package gvfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nfs3"
	"repro/internal/nfsclient"
)

// TestModelRandomOpsMatchShadow drives a random single-client operation
// sequence through the entire stack (kernel client -> proxy client -> WAN ->
// proxy server -> NFS server) and cross-checks every observable result
// against a trivial in-memory shadow model. Any cache-coherence bug between
// the four caching layers shows up as a divergence.
func TestModelRandomOpsMatchShadow(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  core.Config
		opts nfsclient.Options
	}{
		{"polling", core.Config{Model: core.ModelPolling, WriteBack: true}, nfsclient.Options{}},
		{"delegation", core.Config{Model: core.ModelDelegation}, nfsclient.Options{NoAC: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			d := newDeployment(t)
			d.Run("model", func() {
				sess, err := d.NewSession("model", mode.cfg)
				if err != nil {
					t.Error(err)
					return
				}
				m, err := sess.Mount("C1", mode.opts)
				if err != nil {
					t.Error(err)
					return
				}
				runModel(t, d, m, 400, testSeed(t, 99))
			})
		})
	}
}

func runModel(t *testing.T, d *Deployment, m *Mount, steps int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	shadow := map[string][]byte{} // path -> contents
	paths := make([]string, 0, 16)
	for i := 0; i < 8; i++ {
		paths = append(paths, fmt.Sprintf("m/f%d", i))
	}
	m.Client.Mkdir("m", 0o755)

	randData := func() []byte {
		n := r.Intn(100_000)
		b := make([]byte, n)
		r.Read(b)
		return b
	}

	for step := 0; step < steps; step++ {
		p := paths[r.Intn(len(paths))]
		switch r.Intn(10) {
		case 0, 1, 2: // write
			data := randData()
			if err := m.Client.WriteFile(p, data); err != nil {
				t.Fatalf("step %d write %s: %v", step, p, err)
			}
			shadow[p] = data
		case 3: // remove
			err := m.Client.Remove(p)
			_, exists := shadow[p]
			if exists && err != nil {
				t.Fatalf("step %d remove %s: %v", step, p, err)
			}
			if !exists && !nfs3.IsStatus(err, nfs3.ErrNoEnt) {
				t.Fatalf("step %d remove missing %s: err=%v, want NOENT", step, p, err)
			}
			delete(shadow, p)
		case 4: // rename
			q := paths[r.Intn(len(paths))]
			err := m.Client.Rename(p, q)
			if data, exists := shadow[p]; exists {
				if err != nil && p != q {
					t.Fatalf("step %d rename %s->%s: %v", step, p, q, err)
				}
				if err == nil && p != q {
					shadow[q] = data
					delete(shadow, p)
				}
			} else if err == nil {
				t.Fatalf("step %d rename of missing %s succeeded", step, p)
			}
		case 5: // stat
			attr, err := m.Client.Stat(p)
			data, exists := shadow[p]
			if exists {
				if err != nil {
					t.Fatalf("step %d stat %s: %v", step, p, err)
				}
				if attr.Size != uint64(len(data)) {
					t.Fatalf("step %d stat %s size=%d, want %d", step, p, attr.Size, len(data))
				}
			} else if err == nil {
				t.Fatalf("step %d stat of missing %s succeeded", step, p)
			}
		case 6: // partial overwrite
			if data, exists := shadow[p]; exists && len(data) > 2 {
				f, err := m.Client.Open(p)
				if err != nil {
					t.Fatalf("step %d open %s: %v", step, p, err)
				}
				off := uint64(r.Intn(len(data) - 1))
				patch := make([]byte, 1+r.Intn(5000))
				r.Read(patch)
				if _, err := f.WriteAt(patch, off); err != nil {
					t.Fatalf("step %d patch %s: %v", step, p, err)
				}
				f.Close()
				end := int(off) + len(patch)
				if end > len(data) {
					grown := make([]byte, end)
					copy(grown, data)
					data = grown
				}
				copy(data[off:], patch)
				shadow[p] = data
			}
		default: // read
			got, err := m.Client.ReadFile(p)
			data, exists := shadow[p]
			if exists {
				if err != nil {
					t.Fatalf("step %d read %s: %v", step, p, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("step %d read %s: %d bytes != shadow %d bytes", step, p, len(got), len(data))
				}
			} else if err == nil {
				t.Fatalf("step %d read of missing %s succeeded", step, p)
			}
		}
		// Occasionally let background machinery (polls, flushes) run.
		if r.Intn(20) == 0 {
			d.Clock.Sleep(35_000_000_000) // 35s
		}
	}

	// Final: flush everything and verify the SERVER's view matches the
	// shadow (end-to-end durability through all cache layers).
	if m.Proxy != nil {
		d.Clock.Sleep(120_000_000_000) // beyond any flush interval
	}
	for p, want := range shadow {
		attr, err := d.FS.LookupPath(p)
		if err != nil {
			t.Fatalf("final: %s missing on server: %v", p, err)
		}
		got := make([]byte, attr.Size)
		if attr.Size > 0 {
			if _, _, err := d.FS.ReadAt(attr.ID, got, 0); err != nil {
				t.Fatalf("final read %s: %v", p, err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final: server copy of %s diverged (%d vs %d bytes)", p, len(got), len(want))
		}
	}
}

// TestModelMultiClientVisibility drives three concurrent mounts through a
// directed write/read schedule and asserts each model's visibility
// contract: polling bounds staleness by the flush + poll window; delegation
// makes a completed write visible to the very next cross-client read (the
// read triggers a recall that flushes the writer's dirty data first). Both
// models must provide read-your-writes.
func TestModelMultiClientVisibility(t *testing.T) {
	readExpect := func(t *testing.T, m *Mount, path, want, when string) {
		t.Helper()
		got, err := m.Client.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %s reads %s: %v", when, m.Host(), path, err)
		}
		if string(got) != want {
			t.Fatalf("%s: %s read %q from %s, want %q", when, m.Host(), got, path, want)
		}
	}
	write := func(t *testing.T, m *Mount, path, val, when string) {
		t.Helper()
		if err := m.Client.WriteFile(path, []byte(val)); err != nil {
			t.Fatalf("%s: %s writes %s: %v", when, m.Host(), path, err)
		}
	}

	t.Run("polling", func(t *testing.T) {
		d := newDeployment(t)
		d.Run("multi", func() {
			cfg := core.Config{
				Model:         core.ModelPolling,
				WriteBack:     true,
				PollPeriod:    10 * time.Second,
				FlushInterval: 10 * time.Second,
			}
			sess, err := d.NewSession("multi", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ms := mountClients(t, sess, 3)
			d.FS.WriteFile("shared/f", []byte("v0"))
			for _, m := range ms {
				readExpect(t, m, "shared/f", "v0", "initial")
			}

			// The window within which a write-back write must become
			// visible: a flush tick lands it, the next poll invalidates.
			window := cfg.FlushInterval + cfg.PollPeriod + 10*time.Second

			write(t, ms[0], "shared/f", "v1", "round 1")
			readExpect(t, ms[0], "shared/f", "v1", "read-your-writes")
			d.Clock.Sleep(window)
			readExpect(t, ms[1], "shared/f", "v1", "after poll window")
			readExpect(t, ms[2], "shared/f", "v1", "after poll window")

			write(t, ms[1], "shared/f", "v2", "round 2")
			readExpect(t, ms[1], "shared/f", "v2", "read-your-writes")
			d.Clock.Sleep(window)
			readExpect(t, ms[0], "shared/f", "v2", "after poll window")
			readExpect(t, ms[2], "shared/f", "v2", "after poll window")
		})
	})

	t.Run("delegation", func(t *testing.T) {
		d := newDeployment(t)
		d.Run("multi", func() {
			sess, err := d.NewSession("multi", core.Config{Model: core.ModelDelegation})
			if err != nil {
				t.Error(err)
				return
			}
			ms := mountClients(t, sess, 3)
			d.FS.WriteFile("shared/f", []byte("v0"))
			for _, m := range ms {
				readExpect(t, m, "shared/f", "v0", "initial")
			}

			// No sleeps: every cross-client read right after a write must
			// already observe it (callback ordering recalls the writer's
			// delegation and flushes before the read is served).
			write(t, ms[0], "shared/f", "v1", "round 1")
			readExpect(t, ms[0], "shared/f", "v1", "read-your-writes")
			readExpect(t, ms[1], "shared/f", "v1", "immediate cross-client")
			readExpect(t, ms[2], "shared/f", "v1", "immediate cross-client")

			write(t, ms[1], "shared/f", "v2", "round 2")
			readExpect(t, ms[1], "shared/f", "v2", "read-your-writes")
			readExpect(t, ms[0], "shared/f", "v2", "immediate cross-client")
			readExpect(t, ms[2], "shared/f", "v2", "immediate cross-client")

			if st := ms[0].Proxy.Stats(); st.Recalls == 0 {
				t.Error("no recalls on the first writer despite cross-client reads")
			}
		})
	})
}

// mountClients mounts n NoAC kernel clients C1..Cn on the session.
func mountClients(t *testing.T, sess *Session, n int) []*Mount {
	t.Helper()
	ms := make([]*Mount, n)
	for i := range ms {
		m, err := sess.Mount(fmt.Sprintf("C%d", i+1), nfsclient.Options{NoAC: true})
		if err != nil {
			t.Fatalf("mount C%d: %v", i+1, err)
		}
		ms[i] = m
	}
	return ms
}

// TestModelMultiClientRandom runs three concurrent mounts through the
// chaos harness's random schedule and visibility checker on a clean
// network (no faults, no disruptions): a pure multi-client coherence test
// of both models.
func TestModelMultiClientRandom(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 5)
			rep, err := RunChaos(ChaosOptions{
				Model:          mode.model,
				Clients:        3,
				Steps:          80,
				Seed:           seed,
				Partitions:     -1,
				ServerRestarts: -1,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			if rep.OpErrors != 0 {
				t.Errorf("%d op errors on a clean network: %v", rep.OpErrors, rep.ErrorSamples)
			}
			if rep.Reads == 0 || rep.Writes == 0 {
				t.Errorf("degenerate schedule: %d reads, %d writes", rep.Reads, rep.Writes)
			}
		})
	}
}
