package gvfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nfs3"
	"repro/internal/simnet"
)

// pipelineRTT is the wide-area round trip the pipeline tests count in.
// Bandwidth is left unconstrained so latencies are pure round-trip counts,
// not transfer serialization.
const pipelineRTT = 40 * time.Millisecond

func newPipelineDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{WAN: simnet.Params{RTT: pipelineRTT}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestParallelFlushRoundTrips pins the tentpole's headline property in
// virtual time: writing back N dirty blocks with FlushParallelism = W costs
// ceil(N/W) wide-area round trips (plus the SETATTR that triggered it), not
// N.
func TestParallelFlushRoundTrips(t *testing.T) {
	const blocks = 16
	const bs = 32 * 1024
	for _, w := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
			d := newPipelineDeployment(t)
			d.FS.WriteFile("big", make([]byte, blocks*bs))
			d.Run("flush", func() {
				sess, err := d.NewSession("s", core.Config{
					Model: core.ModelPolling, WriteBack: true,
					FlushParallelism: w, FlushInterval: time.Hour,
					// Pin one WRITE per block: this test measures flush
					// parallelism, not coalescing (see
					// TestCoalescedFlushRoundTrips for that).
					MaxWriteBytes: bs,
				})
				if err != nil {
					t.Error(err)
					return
				}
				m, err := sess.Mount("C1", kernelNoac())
				if err != nil {
					t.Error(err)
					return
				}
				f, err := m.Client.Open("big")
				if err != nil {
					t.Error(err)
					return
				}
				// Warm the proxy's attribute cache so writes are absorbed.
				if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
					t.Error(err)
					return
				}
				block := bytes.Repeat([]byte{0xAB}, bs)
				for bn := 0; bn < blocks; bn++ {
					if _, err := f.WriteAt(block, uint64(bn*bs)); err != nil {
						t.Error(err)
						return
					}
				}
				// Loopback push to the proxy; no wide-area traffic yet.
				if err := f.Sync(); err != nil {
					t.Error(err)
					return
				}
				if got := m.WANCounts()["WRITE"]; got != 0 {
					t.Errorf("dirty blocks crossed the WAN before the flush: %d WRITEs", got)
					return
				}
				// The truncation's SETATTR forces a synchronous flushFile.
				elapsed := d.Elapsed(func() {
					if terr := f.Truncate(blocks * bs); terr != nil {
						t.Error(terr)
					}
				})
				rounds := (blocks + w - 1) / w
				want := time.Duration(rounds+1) * pipelineRTT // flush rounds + SETATTR
				if elapsed < want || elapsed > want+pipelineRTT/2 {
					t.Errorf("W=%d: flush of %d blocks took %v, want ~%v (%d round trips)",
						w, blocks, elapsed, want, rounds+1)
				}
				if got := m.WANCounts()["WRITE"]; got != blocks {
					t.Errorf("WAN WRITEs = %d, want %d (one per dirty block)", got, blocks)
				}
			})
		})
	}
}

// TestReadAheadPipelinesColdSequentialRead pins the readahead half: a cold
// sequential read of a multi-block file with ReadAhead enabled completes in
// far fewer round trips than one per block, without double-issuing READs.
func TestReadAheadPipelinesColdSequentialRead(t *testing.T) {
	const blocks = 16
	const bs = 32 * 1024
	data := make([]byte, blocks*bs)
	for i := range data {
		data[i] = byte(i % 251)
	}

	coldRead := func(t *testing.T, ra int) (time.Duration, *Mount) {
		d := newPipelineDeployment(t)
		d.FS.WriteFile("data", data)
		var elapsed time.Duration
		var m *Mount
		d.Run("read", func() {
			sess, err := d.NewSession("s", core.Config{Model: core.ModelPolling, ReadAhead: ra})
			if err != nil {
				t.Error(err)
				return
			}
			if m, err = sess.Mount("C1", kernelNoac()); err != nil {
				t.Error(err)
				return
			}
			var got []byte
			elapsed = d.Elapsed(func() {
				got, err = m.Client.ReadFile("data")
			})
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("readahead corrupted the stream: got %d bytes", len(got))
			}
		})
		return elapsed, m
	}

	serial, _ := coldRead(t, 0)
	piped, m := coldRead(t, 8)
	if t.Failed() {
		return
	}
	// Serial pays ~1 RTT per block; the pipeline must cut that at least in
	// half (it does much better: the window keeps ~8 READs in flight).
	if piped*2 >= serial {
		t.Errorf("RA=8 cold read %v not meaningfully faster than serial %v", piped, serial)
	}
	if ras := m.Proxy.Stats().ReadAheads; ras == 0 {
		t.Error("no blocks were prefetched")
	}
	if reads := m.WANCounts()["READ"]; reads != blocks {
		t.Errorf("WAN READs = %d, want %d (readahead must not double-issue)", reads, blocks)
	}
}

// TestShortTailBlockReread is the regression test for the localReadRes
// offset bug: a short tail block cached via the EOF path, re-read at its
// aligned offset, must serve the right bytes (the old in-block offset was
// offset %% len(block) — garbage for short blocks). Covered for both models,
// with and without dirty data buffered on the file.
func TestShortTailBlockReread(t *testing.T) {
	const bs = 32 * 1024
	const tailLen = 10
	data := make([]byte, bs+tailLen)
	for i := range data {
		data[i] = byte(i % 249)
	}
	for _, model := range []core.Model{core.ModelPolling, core.ModelDelegation} {
		for _, dirty := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/dirty=%v", model, dirty), func(t *testing.T) {
				d := newDeployment(t)
				d.FS.WriteFile("tail.bin", data)
				d.Run("reread", func() {
					cfg := core.Config{Model: model}
					if model == core.ModelPolling {
						cfg.WriteBack = true
					}
					sess, err := d.NewSession("s", cfg)
					if err != nil {
						t.Error(err)
						return
					}
					m, err := sess.Mount("C1", kernelNoac())
					if err != nil {
						t.Error(err)
						return
					}
					// Drive the proxy directly so the kernel client's own
					// data cache cannot hide the proxy's serving path.
					conn := m.Client.Conn()
					lk, err := conn.Lookup(m.Client.Root(), "tail.bin")
					if err != nil || lk.Status != nfs3.OK {
						t.Errorf("lookup: %v status %v", err, lk.Status)
						return
					}
					fh := lk.FH
					if _, err := conn.Read(fh, 0, bs); err != nil {
						t.Error(err)
						return
					}
					r1, err := conn.Read(fh, bs, bs)
					if err != nil || r1.Status != nfs3.OK {
						t.Errorf("cold tail read: %v status %v", err, r1.Status)
						return
					}
					if int(r1.Count) != tailLen || !bytes.Equal(r1.Data, data[bs:]) {
						t.Errorf("cold tail read returned %d bytes", r1.Count)
						return
					}
					if dirty {
						// Buffer dirty data on another block so the re-read
						// exercises the dirty-file serving predicate.
						w, werr := conn.Write(fh, 0, data[:bs], nfs3.FileSync)
						if werr != nil || w.Status != nfs3.OK {
							t.Errorf("write: %v status %v", werr, w.Status)
							return
						}
					}
					before := m.WANCounts()["READ"]
					r2, err := conn.Read(fh, bs, bs)
					if err != nil || r2.Status != nfs3.OK {
						t.Errorf("tail re-read: %v status %v", err, r2.Status)
						return
					}
					if int(r2.Count) != tailLen || !bytes.Equal(r2.Data, data[bs:]) || !r2.EOF {
						t.Errorf("tail re-read served wrong bytes: count=%d eof=%v", r2.Count, r2.EOF)
					}
					if model == core.ModelPolling {
						if after := m.WANCounts()["READ"]; after != before {
							t.Errorf("tail re-read crossed the WAN (%d -> %d READs)", before, after)
						}
					}
				})
			})
		}
	}
}

// TestChaosParallelFlush reruns the multi-client chaos harness with the
// parallel write-back pipeline enabled: the per-model visibility checker
// must hold when flush WRITEs race each other, which stresses the per-block
// dirty-generation fences under genuine concurrency.
func TestChaosParallelFlush(t *testing.T) {
	for _, seed := range []int64{3, 17, 71} {
		for _, model := range []core.Model{core.ModelPolling, core.ModelDelegation} {
			t.Run(fmt.Sprintf("%v/seed=%d", model, seed), func(t *testing.T) {
				rep, err := RunChaos(ChaosOptions{
					Model:            model,
					Seed:             seed,
					Steps:            60,
					Faults:           chaosFaults(),
					FlushParallelism: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Violations) != 0 {
					t.Fatalf("visibility violations with parallel flush: %v", rep.Violations)
				}
			})
		}
	}
}
