package gvfs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nfs3"
	"repro/internal/nfsclient"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/simnet"
)

// This file is the chaos harness: N concurrent mounts driven through a
// random operation schedule while a seeded fault plan disrupts the wide
// area (drops, duplicates, reordering, jitter, partition/heal cycles,
// proxy-server crash/restarts), with every observed read checked against
// the visibility rules of the configured consistency model.
//
// The checker is deliberately assertion-per-model, not shadow-state: under
// write-back caching two concurrent writers give last-FLUSH-wins, not
// last-write-wins, so a read is judged against the set of writes that are
// *plausible* at its virtual time. A write w stops being plausible only
// when some anchor write wa provably supersedes it: wa started after w's
// last possible server landing (w.end + flushLag), and wa is either (a)
// globally propagated (its visibility deadline passed before the read
// began), (b) the reading client's own earlier write (read-your-writes), or
// (c) a value this client already observed (monotonic reads). Failed ops
// are indeterminate: plausible forever, never excluders.
//
// The staleness windows are per model. Polling (Section 4.2) bounds
// staleness by the poll window — but only while polls succeed, so a
// partition extends the bound by its duration. Delegation (Section 4.3)
// bounds it by the DelegRenew forwarding lease that covers lost callbacks.

// ChaosOptions parameterizes a chaos run. Zero values select defaults.
type ChaosOptions struct {
	// Model is the consistency model under test (default ModelPolling).
	Model core.Model
	// Metadata switches the workload from data overwrites to namespace
	// churn: exclusive creates, unlinks, and renames over a shared name
	// pool, probed by stats, access checks, and readdir membership scans.
	// The checker then validates observed *existence* instead of observed
	// values, exercising the proxy's dentry, negative-lookup, and listing
	// caches under the same fault plan.
	Metadata bool
	// Clients is the number of concurrent client mounts (default 2).
	Clients int
	// Steps is the number of operations each client performs (default 120).
	Steps int
	// Seed drives the op schedule, the fault plan, and the link PRNGs.
	Seed int64
	// Files is the number of shared paths clients contend on (default 6).
	Files int
	// ValueSize is the fixed byte size of every file (default 64). Writes
	// are whole-value overwrites at offset zero so the files never change
	// size and every read/write is a single atomic RPC.
	ValueSize int
	// Faults is the per-link fault policy installed between every client
	// host and the server host once setup completes. Its Seed field is
	// overwritten with Seed.
	Faults simnet.Faults
	// Partitions is the number of partition/heal cycles, each isolating
	// one client host from the server for 10–25 s (default 1; -1 for
	// none).
	Partitions int
	// ServerRestarts is the number of proxy-server crash/restarts
	// (default 1; -1 for none).
	ServerRestarts int
	// OpGap bounds the random think time between a client's operations
	// (default 3s; actual gaps are 500ms + uniform[0, OpGap)).
	OpGap time.Duration
	// FlushParallelism is forwarded to core.Config.FlushParallelism: how
	// many dirty-block WRITEs a proxy-client flush keeps in flight at
	// once. 0 keeps the core default (serial).
	FlushParallelism int
	// TraceAll dumps the span trace of every contended path into
	// ChaosReport.Traces, not just paths implicated in a violation — for
	// replay-determinism assertions and offline inspection.
	TraceAll bool
	// Overload runs the session's proxy server with a bounded scheduling
	// layer (small worker pool, global token-bucket admission) and opens
	// every client's op schedule with a synchronized burst fan-in of cold
	// reads, so the server provably sheds load (TRY_LATER) while the
	// at-least-once machinery absorbs it. Clients defaults to 6 in this
	// mode.
	Overload bool
	// DiskCacheDir enables the persistent disk cache on every mount (each
	// mount persists under its own subdirectory). Required for WarmRestarts.
	DiskCacheDir string
	// WarmRestarts is the number of proxy-client warm restarts in data mode:
	// a randomly chosen client is killed mid-run without any shutdown
	// (in-flight flushes and all in-memory state drop on the floor; the
	// persistent disk cache survives in whatever mid-state the crash left)
	// and remounted from the same disk directory, recovering dirty blocks
	// into write-back and revalidating clean ones. Defaults to 1 when
	// DiskCacheDir is set; -1 for none. Ignored in Metadata mode.
	WarmRestarts int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Model == 0 {
		o.Model = core.ModelPolling
	}
	if o.Clients == 0 {
		o.Clients = 2
		if o.Overload {
			o.Clients = 6
		}
	}
	if o.Steps == 0 {
		o.Steps = 120
	}
	if o.Files == 0 {
		o.Files = 6
	}
	if o.ValueSize == 0 {
		o.ValueSize = 64
	}
	// Negative counts mean "none" and survive repeated normalization
	// (withDefaults must be idempotent: RunChaos and NewChaosPlan both
	// apply it).
	if o.Partitions == 0 {
		o.Partitions = 1
	}
	if o.ServerRestarts == 0 {
		o.ServerRestarts = 1
	}
	if o.WarmRestarts == 0 && o.DiskCacheDir != "" {
		o.WarmRestarts = 1
	}
	if o.OpGap == 0 {
		o.OpGap = 3 * time.Second
	}
	o.Faults.Seed = o.Seed
	return o
}

// ChaosEvent is one scheduled disruption, in virtual time from the start
// of the op phase.
type ChaosEvent struct {
	At   time.Duration
	Kind string // "partition", "heal", "restart-server", "restart-client"
	Host string // the targeted client host (partition/heal/restart-client)
}

// ChaosPlan is the deterministic disruption schedule derived from a seed.
type ChaosPlan struct {
	Seed   int64
	Faults simnet.Faults
	Events []ChaosEvent
}

// maxPartition bounds every partition's duration; the checker's staleness
// windows depend on it.
const maxPartition = 25 * time.Second

// NewChaosPlan derives the disruption schedule from the options alone, so
// the same seed always yields the same plan.
func NewChaosPlan(o ChaosOptions) ChaosPlan {
	o = o.withDefaults()
	r := rand.New(rand.NewSource(o.Seed ^ 0x5eedfa17))
	// Ops span roughly Steps * (500ms + OpGap/2); schedule disruptions
	// inside the middle 70% so setup and drain stay clean.
	span := time.Duration(o.Steps) * (500*time.Millisecond + o.OpGap/2)
	lo, hi := span/10, span*8/10
	randAt := func() time.Duration {
		return lo + time.Duration(r.Int63n(int64(hi-lo)))
	}
	plan := ChaosPlan{Seed: o.Seed, Faults: o.Faults}
	for i := 0; i < max(0, o.Partitions); i++ {
		at := randAt()
		host := chaosHost(r.Intn(o.Clients))
		dur := 10*time.Second + time.Duration(r.Int63n(int64(maxPartition-10*time.Second)))
		plan.Events = append(plan.Events,
			ChaosEvent{At: at, Kind: "partition", Host: host},
			ChaosEvent{At: at + dur, Kind: "heal", Host: host},
		)
	}
	for i := 0; i < max(0, o.ServerRestarts); i++ {
		plan.Events = append(plan.Events, ChaosEvent{At: randAt(), Kind: "restart-server"})
	}
	if o.DiskCacheDir != "" && !o.Metadata {
		for i := 0; i < max(0, o.WarmRestarts); i++ {
			plan.Events = append(plan.Events,
				ChaosEvent{At: randAt(), Kind: "restart-client", Host: chaosHost(r.Intn(o.Clients))})
		}
	}
	sort.Slice(plan.Events, func(i, j int) bool { return plan.Events[i].At < plan.Events[j].At })
	return plan
}

func chaosHost(i int) string { return fmt.Sprintf("C%d", i+1) }

// chaosBurstFiles is how many cold files each client reads back-to-back in
// the Overload mode's opening burst fan-in.
const chaosBurstFiles = 6

func chaosBurstPath(client, k int) string {
	return fmt.Sprintf("burst/%s_%d", chaosHost(client), k)
}

// chaosBurstFanIn slams the proxy server with back-to-back cold reads from
// one client; run concurrently by every client it overdraws the Overload
// admission bucket by an order of magnitude, forcing sheds. Errors are
// ignored — the burst is load, not an observation (a read that exhausts its
// retransmission window under heavy shedding is the overload behaving as
// designed).
func chaosBurstFanIn(m *Mount, client int) {
	for k := 0; k < chaosBurstFiles; k++ {
		m.Client.ReadFile(chaosBurstPath(client, k))
	}
}

// ChaosReport summarizes a chaos run for assertions and debugging.
type ChaosReport struct {
	Plan     ChaosPlan
	Ops      int
	Reads    int
	Writes   int
	OpErrors int // ops that returned an error (indeterminate, not violations)
	// ErrorSamples holds up to 10 formatted op errors for debugging.
	ErrorSamples []string
	Violations   []string

	// NetEvents is the applied partition/heal log in simnet's stamped
	// virtual time: comparing it across runs asserts that a seeded plan
	// replays identically.
	NetEvents []simnet.Event
	NetStats  simnet.Stats
	Restarts  int
	// WarmRestarts counts proxy-client crash/remount-from-disk cycles the
	// plan's "restart-client" events actually performed.
	WarmRestarts int

	ClientStats core.ProxyClientStats // summed over all mounts
	ServerStats core.ProxyServerStats // the final server incarnation

	// Traces maps each path implicated in a violation to the formatted
	// span trace of every retained RPC that touched it — request IDs and
	// virtual timestamps across kernel clients, proxies, and the server —
	// so a seeded failure can be diagnosed without rerunning.
	Traces map[string]string

	// Metrics is the unified registry snapshot taken after the drain.
	Metrics obs.Snapshot

	// Retransmits and DRCHits total the at-least-once RPC machinery's work
	// across every node: same-XID retransmissions sent, and duplicate
	// requests answered from a server's reply cache instead of re-executed.
	Retransmits int64
	DRCHits     int64
	// Sheds totals gvfs_server_shed_total across every node: requests the
	// bounded scheduling layer answered with TRY_LATER (Overload mode).
	Sheds int64

	// StalenessViolations totals gvfs_staleness_violations_total across both
	// models: cache serves of data superseded by a remote commit inside the
	// client's freshness horizon. Zero on a correct run — the observatory
	// measures staleness the models permit, never staleness they forbid.
	StalenessViolations int64
	// Attribution is the formatted critical-path latency report over every
	// retained kernel request: per-op percentiles and segment shares, plus
	// the slowest requests' breakdowns.
	Attribution string
	// DroppedSpans counts spans the bounded rings overwrote before the final
	// harvest; nonzero means Traces and Attribution are lower bounds.
	DroppedSpans uint64
}

// traceSpans bounds how many spans a per-path violation trace retains.
const traceSpans = 400

// chaosOp is one recorded operation; the checker replays these after the
// run completes.
type chaosOp struct {
	kind       byte // 'w', 'r', 's'
	path       string
	start, end time.Duration
	err        error
	val        string // payload written, or observed by a read
	size       uint64 // stat result
	wr         *chaosWrite
}

// chaosWrite is the checker's record of one write (client -1 is the
// initial server-side contents).
type chaosWrite struct {
	client     int
	seq        int
	start, end time.Duration
	failed     bool
}

const farPast = time.Duration(math.MinInt64 / 4)

// flushEnd is the last virtual time at which w's data can still land on
// (or overwrite) the server.
func (w *chaosWrite) flushEnd(flushLag time.Duration) time.Duration {
	if w.client < 0 {
		return w.start // initial contents: on the server from the start
	}
	return w.end + flushLag
}

func chaosValue(client, seq, size int) string {
	s := fmt.Sprintf("v|%d|%06d|", client, seq)
	if len(s) < size {
		s += strings.Repeat(".", size-len(s))
	}
	return s
}

// parseChaosValue recovers (client, seq) from a payload; ok is false for
// anything the harness never wrote.
func parseChaosValue(s string) (client, seq int, ok bool) {
	parts := strings.SplitN(s, "|", 4)
	if len(parts) != 4 || parts[0] != "v" {
		return 0, 0, false
	}
	c, err1 := strconv.Atoi(parts[1])
	q, err2 := strconv.Atoi(parts[2])
	return c, q, err1 == nil && err2 == nil
}

// RunChaos stands up a fresh deployment, executes the seeded chaos
// schedule, and returns the checked report. The error covers harness
// failures (setup, final server state unreadable); consistency violations
// are reported in ChaosReport.Violations.
func RunChaos(o ChaosOptions) (*ChaosReport, error) {
	o = o.withDefaults()
	plan := NewChaosPlan(o)

	d, err := NewDeployment(Config{})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	cfg := core.Config{
		Model:            o.Model,
		PollPeriod:       10 * time.Second,
		PollBackoffMax:   10 * time.Second, // no idle backoff: keep the poll window fixed
		FlushInterval:    10 * time.Second,
		CallTimeout:      4 * time.Second,
		DelegRenew:       30 * time.Second,
		DelegExpiry:      2 * time.Minute,
		FlushParallelism: o.FlushParallelism,
		// Same-XID retransmission inside each 4 s call window (at ~1 s and
		// ~3 s), so a dropped request or reply is usually recovered without
		// surfacing an error; the jitter hash is seeded from the run so
		// replays stay byte-identical.
		RetransmitInitial: time.Second,
		RetransmitMax:     4 * time.Second,
		RetransmitSeed:    o.Seed,
	}
	if o.Model == core.ModelPolling {
		cfg.WriteBack = true
	}
	if o.DiskCacheDir != "" {
		cfg.DiskCacheDir = o.DiskCacheDir // mountWithCache appends the hostname
	}
	if o.Overload {
		// Bounded server: a two-worker pool and a global admission bucket
		// sized well below the opening burst fan-in, so the run provably
		// sheds (gvfs_server_shed_total > 0) and every shed is absorbed by
		// same-XID retransmission.
		cfg.ServerWorkers = 2
		cfg.RateLimitOps = 25
		cfg.RateLimitBurst = 10
	}
	// rpcSlack: up to 3 rawCall attempts (timeout + redial pause) plus margin.
	rpcSlack := 3*(cfg.CallTimeout+time.Second) + 5*time.Second
	// flushLag: how long after an op returns its data can still land on the
	// server — a flush tick, blocked for a whole partition, plus the retry
	// tick after the heal.
	flushLag := 2*cfg.FlushInterval + maxPartition + rpcSlack + 10*time.Second
	// propLag: how long after landing a value can remain invisible to other
	// clients. Polling: the poll window, extended by a partition that
	// blocks GETINV. Delegation: the DelegRenew forwarding lease that
	// bounds serving after a lost callback (a partition cannot extend it —
	// the lease is time-based).
	var propLag time.Duration
	if o.Model == core.ModelPolling {
		propLag = cfg.PollPeriod + maxPartition + rpcSlack + 10*time.Second
	} else {
		propLag = cfg.DelegRenew + rpcSlack + 10*time.Second
	}

	// nameLag: how long after a write-through namespace op returns its
	// effect can still land on the server (in-flight retries only — there
	// is no write-back buffer for namespace state).
	nameLag := rpcSlack

	rep := &ChaosReport{Plan: plan}
	paths := make([]string, o.Files)
	writes := make(map[string][]*chaosWrite, o.Files)
	nameEvents := make(map[string][]*chaosNameEvent)
	logs := make([][]chaosOp, o.Clients)
	metaLogs := make([][]chaosMetaOp, o.Clients)
	mounts := make([]*Mount, o.Clients)
	var sess *Session
	var runErr error

	d.Run("chaos", func() {
		// Setup: session, initial server-side contents, one mount per host.
		sess, runErr = d.NewSession("chaos", cfg)
		if runErr != nil {
			return
		}
		initTime := d.Clock.Now()
		if o.Metadata {
			// Name pool: twice as many names as "files", half pre-created
			// so unlinks, probes, and negative lookups all have material
			// from the first step.
			paths = make([]string, 2*o.Files)
			for i := range paths {
				paths[i] = chaosMetaName(i)
				exists := i%2 == 0
				if exists {
					if _, err := d.FS.WriteFile(paths[i], []byte("x")); err != nil {
						runErr = fmt.Errorf("chaos: seed %s: %w", paths[i], err)
						return
					}
				}
				nameEvents[paths[i]] = []*chaosNameEvent{{client: -1, exists: exists, start: initTime, end: initTime}}
			}
			for i := 0; i < chaosMetaGhosts; i++ {
				nameEvents[chaosMetaGhost(i)] = []*chaosNameEvent{{client: -1, exists: false, start: initTime, end: initTime}}
			}
		} else {
			for i := range paths {
				paths[i] = fmt.Sprintf("chaos/f%d", i)
				if _, err := d.FS.WriteFile(paths[i], []byte(chaosValue(-1, 0, o.ValueSize))); err != nil {
					runErr = fmt.Errorf("chaos: seed %s: %w", paths[i], err)
					return
				}
				writes[paths[i]] = []*chaosWrite{{client: -1, start: initTime, end: initTime}}
			}
		}
		if o.Overload {
			// Per-client cold files for the opening burst fan-in: distinct
			// paths so the burst is pure server load, invisible to the
			// consistency checker.
			for i := 0; i < o.Clients; i++ {
				for k := 0; k < chaosBurstFiles; k++ {
					if _, err := d.FS.WriteFile(chaosBurstPath(i, k), []byte("burst")); err != nil {
						runErr = fmt.Errorf("chaos: seed burst file: %w", err)
						return
					}
				}
			}
		}
		for i := range mounts {
			// NoAC so the kernel client revalidates attributes on every
			// access: observed staleness is then purely the proxies'.
			m, err := sess.Mount(chaosHost(i), nfsclient.Options{NoAC: true})
			if err != nil {
				runErr = fmt.Errorf("chaos: mount %s: %w", chaosHost(i), err)
				return
			}
			mounts[i] = m
		}

		// Chaos begins: install the fault policy on every client<->server
		// link and let the driver apply the scheduled disruptions.
		t0 := d.Clock.Now()
		for i := 0; i < o.Clients; i++ {
			d.Net.SetFaults(chaosHost(i), "server", plan.Faults)
		}
		var restartMu sync.Mutex
		// Warm restarts are performed by the target client's own loop at the
		// first op boundary past the scheduled time, not by the driver: the
		// loop is the mount's only user, so the crash/remount swap needs no
		// cross-goroutine handoff. Times are absolute virtual clock values.
		warmAt := make([][]time.Duration, o.Clients)
		for _, ev := range plan.Events {
			if ev.Kind != "restart-client" {
				continue
			}
			for i := 0; i < o.Clients; i++ {
				if chaosHost(i) == ev.Host {
					warmAt[i] = append(warmAt[i], t0+ev.At)
				}
			}
		}
		g := d.NewGroup()
		g.Go("chaos-driver", func() {
			for _, ev := range plan.Events {
				if until := t0 + ev.At - d.Clock.Now(); until > 0 {
					d.Clock.Sleep(until)
				}
				switch ev.Kind {
				case "partition":
					d.Net.Partition(ev.Host, "server")
				case "heal":
					d.Net.Heal(ev.Host, "server")
				case "restart-server":
					if err := sess.RestartProxyServer(); err != nil {
						restartMu.Lock()
						rep.Violations = append(rep.Violations,
							fmt.Sprintf("driver: restart proxy server: %v", err))
						restartMu.Unlock()
						continue
					}
					restartMu.Lock()
					rep.Restarts++
					restartMu.Unlock()
				}
			}
		})
		for i := range mounts {
			i := i
			g.Go(fmt.Sprintf("chaos-%s", chaosHost(i)), func() {
				if o.Overload {
					chaosBurstFanIn(mounts[i], i)
				}
				if o.Metadata {
					metaLogs[i] = chaosMetaClientLoop(d, mounts[i], i, o, paths)
				} else {
					logs[i] = chaosClientLoop(d, sess, mounts, i, o, paths, warmAt[i], &restartMu, rep)
				}
			})
		}
		g.Wait()

		// Drain: lift the faults, then wait out every window so all dirty
		// data lands and every cache converges before the final check.
		for i := 0; i < o.Clients; i++ {
			d.Net.SetFaults(chaosHost(i), "server", simnet.Faults{})
		}
		d.Clock.Sleep(flushLag + propLag + 30*time.Second)
	})
	if runErr != nil {
		return nil, runErr
	}

	if o.Metadata {
		// Merge namespace events into per-name history, then check every
		// existence observation. Reads counts the checkable probes; Writes
		// counts the successful state-establishing ops.
		for _, log := range metaLogs {
			for i := range log {
				op := &log[i]
				rep.Ops++
				if op.err != nil {
					rep.OpErrors++
					if len(rep.ErrorSamples) < 10 {
						rep.ErrorSamples = append(rep.ErrorSamples, fmt.Sprintf(
							"%c %s at %v: %v", op.kind, op.name, op.end, op.err))
					}
				}
				if op.probe {
					rep.Reads++
				} else if op.err == nil && len(op.events) > 0 {
					rep.Writes++
				}
				for n, e := range op.events {
					nameEvents[n] = append(nameEvents[n], e)
				}
			}
		}
		for client, log := range metaLogs {
			rep.Violations = append(rep.Violations,
				checkMetaClientLog(client, log, nameEvents, nameLag, propLag)...)
		}
		rep.Violations = append(rep.Violations,
			checkFinalNameState(d, paths, nameEvents, nameLag)...)
	} else {
		// Merge write records into per-path history, then check every read.
		for _, log := range logs {
			for i := range log {
				op := &log[i]
				rep.Ops++
				if op.err != nil {
					rep.OpErrors++
					if len(rep.ErrorSamples) < 10 {
						rep.ErrorSamples = append(rep.ErrorSamples, fmt.Sprintf(
							"%c %s at %v: %v", op.kind, op.path, op.end, op.err))
					}
				}
				if op.kind == 'w' {
					rep.Writes++
					writes[op.path] = append(writes[op.path], op.wr)
				}
			}
		}
		for client, log := range logs {
			rep.Violations = append(rep.Violations,
				checkClientLog(client, log, writes, flushLag, propLag, o)...)
			for i := range log {
				if log[i].kind == 'r' {
					rep.Reads++
				}
			}
		}
		if v, err := checkFinalServerState(d, paths, writes, flushLag); err != nil {
			return nil, err
		} else {
			rep.Violations = append(rep.Violations, v...)
		}
	}

	// Attach the virtual-time span trace for every implicated path: a
	// violation message always names its path followed by a delimiter, so a
	// substring probe is enough to decide which files need dumping.
	implicated := func(p string) bool {
		if o.TraceAll {
			return true
		}
		for _, v := range rep.Violations {
			if strings.Contains(v, p+" ") || strings.Contains(v, p+":") {
				return true
			}
		}
		return false
	}
	for _, p := range paths {
		if !implicated(p) {
			continue
		}
		if spans, err := d.TraceForPath(p, traceSpans); err == nil {
			if rep.Traces == nil {
				rep.Traces = make(map[string]string)
			}
			rep.Traces[p] = obs.FormatSpans(spans, d.Obs.DroppedSpans())
		}
	}
	rep.Metrics = d.PublishMetrics()
	rep.Retransmits = rep.Metrics.SumCounters("gvfs_rpc_retransmits_total")
	rep.DRCHits = rep.Metrics.SumCounters("gvfs_rpc_drc_hits_total")
	rep.Sheds = rep.Metrics.SumCounters("gvfs_server_shed_total")
	rep.StalenessViolations = rep.Metrics.SumCounters("gvfs_staleness_violations_total")
	rep.Attribution = attr.FormatReport(d.Attribution(), 5)
	rep.DroppedSpans = d.Obs.DroppedSpans()

	rep.NetEvents = d.Net.Events()
	rep.NetStats = d.Net.TotalStats()
	for _, m := range mounts {
		s := m.Proxy.Stats()
		rep.ClientStats.LocalHits += s.LocalHits
		rep.ClientStats.Forwards += s.Forwards
		rep.ClientStats.Invalidations += s.Invalidations
		rep.ClientStats.ForceInvalidations += s.ForceInvalidations
		rep.ClientStats.Recalls += s.Recalls
		rep.ClientStats.FlushedBlocks += s.FlushedBlocks
		rep.ClientStats.UpstreamRetries += s.UpstreamRetries
		rep.ClientStats.FlushErrors += s.FlushErrors
		rep.ClientStats.ReadAheads += s.ReadAheads
		rep.ClientStats.AttrHits += s.AttrHits
		rep.ClientStats.DentryHits += s.DentryHits
		rep.ClientStats.NegLookupHits += s.NegLookupHits
		rep.ClientStats.AccessHits += s.AccessHits
		rep.ClientStats.ListingHits += s.ListingHits
		rep.ClientStats.MetaExpiries += s.MetaExpiries
		rep.ClientStats.MetaEvictions += s.MetaEvictions
		rep.ClientStats.PollCapped += s.PollCapped
		rep.ClientStats.RecoveredBlocks += s.RecoveredBlocks
		rep.ClientStats.RecoveredDirty += s.RecoveredDirty
		rep.ClientStats.RecoveryDropped += s.RecoveryDropped
		rep.ClientStats.RevalidatedBlocks += s.RevalidatedBlocks
		rep.ClientStats.RefetchedBlocks += s.RefetchedBlocks
	}
	rep.ServerStats = sess.ProxyServer().Stats()
	return rep, nil
}

// chaosClientLoop runs one client's random op schedule and records every
// operation with its virtual-time interval. restarts holds absolute virtual
// times at which this client warm-restarts: the proxy is killed without
// shutdown (Crash abandons the disk store in whatever mid-state it is in)
// and remounted from the same disk directory before the next op. The new
// mount is swapped into mounts[client] so the final stats sweep sees the
// live incarnation.
func chaosClientLoop(d *Deployment, sess *Session, mounts []*Mount, client int, o ChaosOptions, paths []string, restarts []time.Duration, mu *sync.Mutex, rep *ChaosReport) []chaosOp {
	r := rand.New(rand.NewSource(o.Seed + 1000*int64(client+1)))
	m := mounts[client]
	log := make([]chaosOp, 0, o.Steps)
	seq := 0
	for step := 0; step < o.Steps; step++ {
		if len(restarts) > 0 && d.Clock.Now() >= restarts[0] {
			restarts = restarts[1:]
			nm, err := sess.RemountFromDisk(m, nfsclient.Options{NoAC: true})
			mu.Lock()
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("driver: warm-restart %s: %v", chaosHost(client), err))
			} else {
				rep.WarmRestarts++
			}
			mu.Unlock()
			if err == nil {
				m = nm
				mounts[client] = nm
			}
		}
		p := paths[r.Intn(len(paths))]
		op := chaosOp{path: p, start: d.Clock.Now()}
		switch roll := r.Intn(10); {
		case roll < 4: // whole-value overwrite at offset 0 (never truncates)
			seq++
			op.kind = 'w'
			op.val = chaosValue(client, seq, o.ValueSize)
			op.err = chaosWriteOp(m, p, op.val)
			op.end = d.Clock.Now()
			op.wr = &chaosWrite{
				client: client, seq: seq,
				start: op.start, end: op.end,
				failed: op.err != nil,
			}
		case roll < 8: // read
			op.kind = 'r'
			var data []byte
			data, op.err = m.Client.ReadFile(p)
			op.end = d.Clock.Now()
			op.val = string(data)
		default: // stat
			op.kind = 's'
			var attr, err = m.Client.Stat(p)
			op.err = err
			op.end = d.Clock.Now()
			op.size = attr.Size
		}
		log = append(log, op)
		d.Clock.Sleep(500*time.Millisecond + time.Duration(r.Int63n(int64(o.OpGap))))
	}
	return log
}

// chaosWriteOp overwrites p's full value in place. It must not use
// Client.WriteFile, which creates (and so truncates) the file: keeping the
// size fixed makes every access a single atomic RPC.
func chaosWriteOp(m *Mount, p, val string) error {
	f, err := m.Client.Open(p)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(val), 0); err != nil {
		f.Close()
		return err
	}
	return f.Close() // Close syncs: the WRITE reaches the proxy here
}

// --- metadata chaos: namespace churn + existence checker --------------------

// chaosMetaDir holds the contended name pool in metadata mode.
const chaosMetaDir = "meta"

func chaosMetaName(i int) string { return fmt.Sprintf("%s/n%02d", chaosMetaDir, i) }

// chaosMetaGhosts is the number of names no client ever creates: probing
// them exercises the negative-lookup cache on every schedule.
const chaosMetaGhosts = 3

func chaosMetaGhost(i int) string { return fmt.Sprintf("%s/ghost%02d", chaosMetaDir, i) }

// chaosNameEvent records one state-establishing namespace operation on a
// name: a create/rename-in makes it exist, an unlink/rename-out removes it.
// Client -1 marks the initial server-side state. Failed ops are
// indeterminate: their effect may still have landed (the op's request can
// execute even when its reply is lost and retries surface an error), so
// they stay plausible establishers forever but never exclude anything.
type chaosNameEvent struct {
	client     int
	exists     bool
	start, end time.Duration
	failed     bool
}

// landEnd is the last virtual time at which e's effect can still reach the
// server: namespace ops are write-through, so only the RPC retry window —
// not a write-back flush — extends past the op's return.
func (e *chaosNameEvent) landEnd(nameLag time.Duration) time.Duration {
	if e.client < 0 {
		return e.start
	}
	return e.end + nameLag
}

// chaosMetaOp is one recorded metadata operation.
type chaosMetaOp struct {
	kind       byte   // 'c' create, 'u' unlink, 'm' rename, 'p' stat, 'a' access, 'd' readdir
	name       string // target (rename: source)
	dest       string // rename destination
	start, end time.Duration
	err        error
	probe      bool // op yielded a checkable existence observation
	observed   bool // the observation: does name exist?
	events     map[string]*chaosNameEvent
}

func isNoEnt(err error) bool {
	var ne *nfs3.Error
	return errors.As(err, &ne) && ne.Status == nfs3.ErrNoEnt
}

// chaosMetaClientLoop runs one client's random namespace schedule: ~25%
// exclusive creates, 20% unlinks, 15% renames, 30% stat/access probes, 10%
// readdir membership scans.
func chaosMetaClientLoop(d *Deployment, m *Mount, client int, o ChaosOptions, names []string) []chaosMetaOp {
	r := rand.New(rand.NewSource(o.Seed + 5000*int64(client+1)))
	log := make([]chaosMetaOp, 0, o.Steps)
	for step := 0; step < o.Steps; step++ {
		n := names[r.Intn(len(names))]
		op := chaosMetaOp{name: n, start: d.Clock.Now()}
		switch roll := r.Intn(20); {
		case roll < 5: // exclusive create
			op.kind = 'c'
			f, err := m.Client.Create(n, 0o644, true)
			if err == nil {
				err = f.Close()
			}
			op.err = err
			op.end = d.Clock.Now()
			op.events = map[string]*chaosNameEvent{n: {
				client: client, exists: true,
				start: op.start, end: op.end, failed: err != nil,
			}}
		case roll < 9: // unlink
			op.kind = 'u'
			op.err = m.Client.Remove(n)
			op.end = d.Clock.Now()
			op.events = map[string]*chaosNameEvent{n: {
				client: client, exists: false,
				start: op.start, end: op.end, failed: op.err != nil,
			}}
		case roll < 12: // rename: n vanishes, dest appears (replacing any old dest)
			op.kind = 'm'
			dst := names[r.Intn(len(names))]
			for dst == n {
				dst = names[r.Intn(len(names))]
			}
			op.dest = dst
			op.err = m.Client.Rename(n, dst)
			op.end = d.Clock.Now()
			failed := op.err != nil
			op.events = map[string]*chaosNameEvent{
				n:   {client: client, exists: false, start: op.start, end: op.end, failed: failed},
				dst: {client: client, exists: true, start: op.start, end: op.end, failed: failed},
			}
		case roll < 18: // existence probe via stat or access check
			if roll == 17 {
				// Ghost names are never created: their probes exercise the
				// negative-lookup cache regardless of how the schedule
				// churns the real pool.
				op.name = chaosMetaGhost(r.Intn(chaosMetaGhosts))
			}
			// Prime, then observe back-to-back: the first call fills the
			// dentry or negative cache so the recorded observation also
			// exercises the hit path.
			var err error
			if roll&1 == 0 {
				op.kind = 'p'
				m.Client.Stat(op.name)
				_, err = m.Client.Stat(op.name)
			} else {
				op.kind = 'a'
				m.Client.Access(op.name, nfs3.AccessRead)
				_, err = m.Client.Access(op.name, nfs3.AccessRead)
			}
			op.end = d.Clock.Now()
			switch {
			case err == nil:
				op.probe, op.observed = true, true
			case isNoEnt(err):
				op.probe, op.observed = true, false
			default:
				op.err = err // indeterminate
			}
		default: // readdir membership scan
			op.kind = 'd'
			entries, err := m.Client.ReadDir(chaosMetaDir)
			op.end = d.Clock.Now()
			if err != nil {
				op.err = err
			} else {
				op.probe = true
				base := strings.TrimPrefix(n, chaosMetaDir+"/")
				for _, e := range entries {
					if e == base {
						op.observed = true
						break
					}
				}
			}
		}
		log = append(log, op)
		d.Clock.Sleep(500*time.Millisecond + time.Duration(r.Int63n(int64(o.OpGap))))
	}
	return log
}

// checkMetaClientLog validates one client's existence observations. An
// observation S of a name over [ps, pe] is plausible iff some event w
// establishes S with w.start <= pe and w is not provably superseded: a
// successful anchor event a exists with a.start > w.landEnd where a is
// either this client's own earlier op (read-your-writes — the proxy
// applies namespace ops to its caches synchronously) or globally
// propagated (a.landEnd + propLag <= ps). Failed events never anchor and
// stay plausible forever, exactly as in the data checker.
func checkMetaClientLog(client int, log []chaosMetaOp, events map[string][]*chaosNameEvent, nameLag, propLag time.Duration) []string {
	var out []string
	ownAnchor := map[string]time.Duration{}
	anchorOf := func(n string, ps time.Duration) time.Duration {
		anchor := farPast
		if a, ok := ownAnchor[n]; ok && a > anchor {
			anchor = a
		}
		for _, e := range events[n] {
			if !e.failed && e.client >= 0 && e.landEnd(nameLag)+propLag <= ps && e.start > anchor {
				anchor = e.start
			}
		}
		return anchor
	}
	kindName := map[byte]string{'p': "stat", 'a': "access", 'd': "readdir"}
	for i := range log {
		op := &log[i]
		if op.err == nil {
			for n, e := range op.events {
				if e.start > ownAnchor[n] {
					ownAnchor[n] = e.start
				}
			}
		}
		if !op.probe {
			continue
		}
		anchor := anchorOf(op.name, op.start)
		plausible := false
		for _, e := range events[op.name] {
			if e.exists != op.observed || e.start > op.end {
				continue
			}
			if e.failed || e.landEnd(nameLag) >= anchor {
				plausible = true
				break
			}
		}
		if !plausible {
			out = append(out, fmt.Sprintf(
				"C%d %s %s at %v: observed exists=%v with no plausible establishing event (anchor %v)",
				client+1, kindName[op.kind], op.name, op.end, op.observed, anchor))
		}
	}
	return out
}

// checkFinalNameState verifies, after the drain, that each name's
// server-side existence is established by some event no successful
// opposite event provably supersedes.
func checkFinalNameState(d *Deployment, names []string, events map[string][]*chaosNameEvent, nameLag time.Duration) []string {
	var out []string
	for _, n := range names {
		_, err := d.FS.LookupPath(n)
		exists := err == nil
		plausible := false
		for _, e := range events[n] {
			if e.exists != exists {
				continue
			}
			if e.failed {
				plausible = true
				break
			}
			superseded := false
			for _, a := range events[n] {
				if !a.failed && a.exists != exists && a.start > e.landEnd(nameLag) {
					superseded = true
					break
				}
			}
			if !superseded {
				plausible = true
				break
			}
		}
		if !plausible {
			out = append(out, fmt.Sprintf(
				"final %s: server exists=%v but every establishing event is superseded", n, exists))
		}
	}
	return out
}

// checkClientLog validates one client's reads and stats against the
// per-model visibility rules, returning violation descriptions.
func checkClientLog(client int, log []chaosOp, writes map[string][]*chaosWrite, flushLag, propLag time.Duration, o ChaosOptions) []string {
	var out []string
	// Anchors per path: the start time of this client's own last
	// successful write (read-your-writes) and of the newest value it has
	// observed (monotonic reads). Ops are sequential per client, so every
	// earlier op ended before the current one started.
	ownAnchor := map[string]time.Duration{}
	seenAnchor := map[string]time.Duration{}
	anchorOf := func(p string, readStart time.Duration) time.Duration {
		anchor := farPast
		if a, ok := ownAnchor[p]; ok && a > anchor {
			anchor = a
		}
		if a, ok := seenAnchor[p]; ok && a > anchor {
			anchor = a
		}
		// Globally propagated writes exclude regardless of who reads.
		for _, w := range writes[p] {
			if !w.failed && w.client >= 0 && w.end+flushLag+propLag <= readStart && w.start > anchor {
				anchor = w.start
			}
		}
		return anchor
	}

	for i := range log {
		op := &log[i]
		switch op.kind {
		case 'w':
			if op.err == nil {
				if op.start > ownAnchor[op.path] {
					ownAnchor[op.path] = op.start
				}
			}
		case 's':
			if op.err == nil && op.size != uint64(o.ValueSize) {
				out = append(out, fmt.Sprintf(
					"C%d stat %s at %v: size %d, want fixed %d",
					client+1, op.path, op.end, op.size, o.ValueSize))
			}
		case 'r':
			if op.err != nil {
				continue // indeterminate
			}
			wc, seq, ok := parseChaosValue(op.val)
			if !ok {
				out = append(out, fmt.Sprintf(
					"C%d read %s at %v: unparseable value %q",
					client+1, op.path, op.end, op.val))
				continue
			}
			var w *chaosWrite
			for _, cand := range writes[op.path] {
				if cand.client == wc && cand.seq == seq {
					w = cand
					break
				}
			}
			if w == nil {
				out = append(out, fmt.Sprintf(
					"C%d read %s at %v: value (client %d, seq %d) was never written",
					client+1, op.path, op.end, wc, seq))
				continue
			}
			if w.start > op.end {
				out = append(out, fmt.Sprintf(
					"C%d read %s at %v: observed write (client %d, seq %d) from the future (starts %v)",
					client+1, op.path, op.end, wc, seq, w.start))
				continue
			}
			// Failed writes are indeterminate: their data may land at any
			// point (e.g. retried from a surviving cache), so they stay
			// plausible and are checked only against the future rule.
			if !w.failed {
				if anchor := anchorOf(op.path, op.start); w.flushEnd(flushLag) < anchor {
					out = append(out, fmt.Sprintf(
						"C%d read %s at %v: stale value (client %d, seq %d, flush deadline %v) superseded by a write at %v",
						client+1, op.path, op.end, wc, seq, w.flushEnd(flushLag), anchor))
					continue
				}
			}
			// Monotonic reads: this value was on the server no earlier
			// than w.start, so anything that must have flushed before then
			// can never be observed by this client again.
			if w.start > seenAnchor[op.path] {
				seenAnchor[op.path] = w.start
			}
		}
	}
	return out
}

// checkFinalServerState verifies, after the drain, that every path's
// server-side contents is some write not provably superseded.
func checkFinalServerState(d *Deployment, paths []string, writes map[string][]*chaosWrite, flushLag time.Duration) ([]string, error) {
	var out []string
	for _, p := range paths {
		attr, err := d.FS.LookupPath(p)
		if err != nil {
			return nil, fmt.Errorf("chaos: final lookup %s: %w", p, err)
		}
		buf := make([]byte, attr.Size)
		if attr.Size > 0 {
			if _, _, err := d.FS.ReadAt(attr.ID, buf, 0); err != nil {
				return nil, fmt.Errorf("chaos: final read %s: %w", p, err)
			}
		}
		wc, seq, ok := parseChaosValue(string(buf))
		if !ok {
			out = append(out, fmt.Sprintf("final %s: unparseable server value %q", p, buf))
			continue
		}
		var w *chaosWrite
		for _, cand := range writes[p] {
			if cand.client == wc && cand.seq == seq {
				w = cand
				break
			}
		}
		if w == nil {
			out = append(out, fmt.Sprintf("final %s: server value (client %d, seq %d) was never written", p, wc, seq))
			continue
		}
		for _, w2 := range writes[p] {
			if w2 != w && !w2.failed && w2.start > w.flushEnd(flushLag) {
				out = append(out, fmt.Sprintf(
					"final %s: server kept (client %d, seq %d) despite a write at %v after its flush deadline %v",
					p, wc, seq, w2.start, w.flushEnd(flushLag)))
				break
			}
		}
	}
	return out, nil
}
