package gvfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// fixedVal builds a 64-byte value with a distinguishing prefix, so
// overwrites never change file size (every access stays one block).
func fixedVal(tag string) []byte {
	b := bytes.Repeat([]byte{'.'}, 64)
	copy(b, tag)
	return b
}

// readServerFile reads a path's content directly from the server-side
// filesystem, bypassing every cache — the ground truth for landing checks.
func readServerFile(t *testing.T, d *Deployment, path string, size int) []byte {
	t.Helper()
	attr, err := d.FS.LookupPath(path)
	if err != nil {
		t.Fatalf("server lookup %s: %v", path, err)
	}
	buf := make([]byte, size)
	if _, _, err := d.FS.ReadAt(attr.ID, buf, 0); err != nil {
		t.Fatalf("server read %s: %v", path, err)
	}
	return buf
}

// TestWarmRestartRevalidatesInsteadOfRefetch is the tentpole's core claim:
// after a client-machine power loss and restart on the same disk cache
// directory, surviving clean blocks are revalidated through the model's
// normal attribute channel — the warm WAN READ count is O(changed blocks),
// not O(cached blocks) — and files changed on the server while the client
// was down are refetched, never served stale.
func TestWarmRestartRevalidatesInsteadOfRefetch(t *testing.T) {
	const nfiles = 8
	const changed = 2
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			d := newDeployment(t)
			for i := 0; i < nfiles; i++ {
				d.FS.WriteFile(fmt.Sprintf("wr/f%d", i), fixedVal(fmt.Sprintf("v0-%d", i)))
			}
			d.Run("warm-restart", func() {
				cfg := core.Config{
					Model:          mode.model,
					PollPeriod:     30 * time.Second,
					PollBackoffMax: 30 * time.Second,
					DiskCacheDir:   t.TempDir(),
				}
				sess, err := d.NewSession("wr", cfg)
				if err != nil {
					t.Error(err)
					return
				}
				m, err := sess.Mount("C1", kernelNoac())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < nfiles; i++ {
					p := fmt.Sprintf("wr/f%d", i)
					got, err := m.Client.ReadFile(p)
					if err != nil {
						t.Fatalf("cold read %s: %v", p, err)
					}
					if want := fixedVal(fmt.Sprintf("v0-%d", i)); !bytes.Equal(got, want) {
						t.Errorf("cold %s = %q", p, got)
					}
				}
				if cold := m.WANCounts()["READ"]; cold < nfiles {
					t.Errorf("cold WAN READs = %d, want >= %d", cold, nfiles)
				}

				// Power loss: the proxy dies without any shutdown and the
				// machine stays down while the server-side content moves
				// underneath two of its cached files.
				m.Proxy.Crash()
				m.conn.Close()
				d.Clock.Sleep(5 * time.Second)
				for i := 0; i < changed; i++ {
					p := fmt.Sprintf("wr/f%d", i)
					if _, err := d.FS.WriteFile(p, fixedVal(fmt.Sprintf("v1-%d", i))); err != nil {
						t.Fatalf("server-side change %s: %v", p, err)
					}
				}

				// Restart on the same disk directory.
				nm, err := sess.mountWithCache("C1", kernelNoac(), nil)
				if err != nil {
					t.Errorf("remount from disk: %v", err)
					return
				}
				nm.Proxy.RecoverAfterCrash()

				for i := 0; i < nfiles; i++ {
					p := fmt.Sprintf("wr/f%d", i)
					want := fixedVal(fmt.Sprintf("v0-%d", i))
					if i < changed {
						want = fixedVal(fmt.Sprintf("v1-%d", i))
					}
					got, err := nm.Client.ReadFile(p)
					if err != nil {
						t.Fatalf("warm read %s: %v", p, err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("warm %s = %q, want %q", p, got, want)
					}
				}
				if warm := nm.WANCounts()["READ"]; warm != changed {
					t.Errorf("warm WAN READs = %d, want %d (changed blocks only)", warm, changed)
				}
				s := nm.Proxy.Stats()
				if s.RecoveredBlocks != nfiles {
					t.Errorf("RecoveredBlocks = %d, want %d", s.RecoveredBlocks, nfiles)
				}
				if s.RevalidatedBlocks != nfiles-changed {
					t.Errorf("RevalidatedBlocks = %d, want %d", s.RevalidatedBlocks, nfiles-changed)
				}
				if s.RefetchedBlocks != changed {
					t.Errorf("RefetchedBlocks = %d, want %d", s.RefetchedBlocks, changed)
				}
			})
			if v := d.PublishMetrics().SumCounters("gvfs_staleness_violations_total"); v != 0 {
				t.Errorf("staleness violations = %d, want 0", v)
			}
		})
	}
}

// TestWarmRestartRecoversDirtyBlocksMidFlush crashes a write-back client
// while its dirty block is mid-flush — the flush attempts are failing into
// a partition when the power is cut — and asserts the recovered proxy
// re-enters the block into write-back and lands it exactly once: the server
// converges to the written value, the writer keeps read-your-writes across
// the restart, a second client observes the value within its poll window,
// and the staleness oracle records nothing.
func TestWarmRestartRecoversDirtyBlocksMidFlush(t *testing.T) {
	const path = "wb/f0"
	d := newDeployment(t)
	d.FS.WriteFile(path, fixedVal("old"))
	d.Run("dirty-crash", func() {
		cfg := core.Config{
			Model:             core.ModelPolling,
			WriteBack:         true,
			FlushInterval:     5 * time.Second,
			PollPeriod:        10 * time.Second,
			PollBackoffMax:    10 * time.Second,
			CallTimeout:       4 * time.Second,
			RetransmitInitial: time.Second,
			RetransmitMax:     4 * time.Second,
			DiskCacheDir:      t.TempDir(),
		}
		sess, err := d.NewSession("dirty", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		m, err := sess.Mount("C1", kernelNoac())
		if err != nil {
			t.Error(err)
			return
		}
		other, err := sess.Mount("C2", kernelNoac())
		if err != nil {
			t.Error(err)
			return
		}

		if _, err := m.Client.ReadFile(path); err != nil {
			t.Fatalf("warm read: %v", err)
		}
		newVal := fixedVal("new")
		if err := chaosWriteOp(m, path, string(newVal)); err != nil {
			t.Fatalf("write-back write: %v", err)
		}

		// Partition the writer before any flush tick: every flush attempt
		// now fails in flight, so the dirty block is exactly the mid-flush
		// state the crash must preserve. A flush attempt only surfaces an
		// error after its full retransmission window (~3 call timeouts), so
		// wait several flush intervals for one to fail.
		d.Net.Partition("C1", "server")
		d.Clock.Sleep(6 * cfg.FlushInterval)
		if got := m.Proxy.Stats().FlushedBlocks; got != 0 {
			t.Fatalf("FlushedBlocks = %d before crash, want 0 (partition must hold the flush in flight)", got)
		}
		if got := readServerFile(t, d, path, 64); !bytes.Equal(got, fixedVal("old")) {
			t.Fatalf("server content landed before crash: %q", got)
		}

		// Power cut and restart on the same disk directory. Heal first so
		// the new incarnation can mount; no virtual time passes between the
		// heal and the crash, so the old incarnation's pending retries
		// cannot land in between.
		d.Net.Heal("C1", "server")
		nm, err := sess.RemountFromDisk(m, kernelNoac())
		if err != nil {
			t.Errorf("remount from disk: %v", err)
			return
		}
		s := nm.Proxy.Stats()
		if s.RecoveredDirty < 1 {
			t.Errorf("RecoveredDirty = %d, want >= 1", s.RecoveredDirty)
		}
		// RecoverAfterCrash writes dirty blocks back synchronously: the
		// value must be on the server before any further activity.
		if got := readServerFile(t, d, path, 64); !bytes.Equal(got, newVal) {
			t.Errorf("server content after recovery = %q, want %q", got, newVal)
		}
		got, err := nm.Client.ReadFile(path)
		if err != nil {
			t.Fatalf("read-your-write after restart: %v", err)
		}
		if !bytes.Equal(got, newVal) {
			t.Errorf("read-your-write after restart = %q, want %q", got, newVal)
		}

		d.Clock.Sleep(cfg.PollPeriod + 10*time.Second)
		got, err = other.Client.ReadFile(path)
		if err != nil {
			t.Fatalf("observer read: %v", err)
		}
		if !bytes.Equal(got, newVal) {
			t.Errorf("observer read = %q, want %q", got, newVal)
		}
	})
	if v := d.PublishMetrics().SumCounters("gvfs_staleness_violations_total"); v != 0 {
		t.Errorf("staleness violations = %d, want 0", v)
	}
}

// TestChaosWarmRestartBothModels is the acceptance scenario for the
// persistent disk cache: lossy links, a partition/heal cycle, a
// proxy-server restart, AND two client power-loss/remount-from-disk cycles
// with dirty write-back blocks in play — in both models, with zero
// visibility-rule violations and zero measured staleness violations.
func TestChaosWarmRestartBothModels(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 11)
			rep, err := RunChaos(ChaosOptions{
				Model:        mode.model,
				Seed:         seed,
				Faults:       chaosFaults(),
				DiskCacheDir: t.TempDir(),
				WarmRestarts: 2,
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			for p, trace := range rep.Traces {
				t.Logf("span trace for %s:\n%s", p, trace)
			}
			if rep.WarmRestarts != 2 {
				t.Errorf("warm restarts = %d, want 2", rep.WarmRestarts)
			}
			if rep.StalenessViolations != 0 {
				t.Errorf("staleness violations = %d, want 0", rep.StalenessViolations)
			}
			if rep.ClientStats.RecoveredBlocks == 0 {
				t.Errorf("RecoveredBlocks = 0, want > 0 across %d warm restarts", rep.WarmRestarts)
			}
			t.Logf("ops=%d errors=%d warmRestarts=%d recovered=%d dirty=%d revalidated=%d refetched=%d dropped=%d",
				rep.Ops, rep.OpErrors, rep.WarmRestarts,
				rep.ClientStats.RecoveredBlocks, rep.ClientStats.RecoveredDirty,
				rep.ClientStats.RevalidatedBlocks, rep.ClientStats.RefetchedBlocks,
				rep.ClientStats.RecoveryDropped)
		})
	}
}
