package gvfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestCoalescedFlushRoundTrips pins the write coalescing half of the
// hot-path work in virtual time: a sequentially dirtied 16-block file
// flushes in ONE wide-area WRITE (16 x 32 KiB = 512 KiB fits the default
// MaxWriteBytes of nfs3.MaxIOSize), so the synchronous flush costs 2 round
// trips (WRITE + the SETATTR that forced it) instead of 17.
func TestCoalescedFlushRoundTrips(t *testing.T) {
	const blocks = 16
	const bs = 32 * 1024
	d := newPipelineDeployment(t)
	d.FS.WriteFile("big", make([]byte, blocks*bs))
	d.Run("flush", func() {
		sess, err := d.NewSession("s", core.Config{
			Model: core.ModelPolling, WriteBack: true, FlushInterval: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		m, err := sess.Mount("C1", kernelNoac())
		if err != nil {
			t.Error(err)
			return
		}
		f, err := m.Client.Open("big")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
			t.Error(err)
			return
		}
		want := make([]byte, blocks*bs)
		for bn := 0; bn < blocks; bn++ {
			block := bytes.Repeat([]byte{byte(bn + 1)}, bs)
			copy(want[bn*bs:], block)
			if _, err := f.WriteAt(block, uint64(bn*bs)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := f.Sync(); err != nil {
			t.Error(err)
			return
		}
		if got := m.WANCounts()["WRITE"]; got != 0 {
			t.Errorf("dirty blocks crossed the WAN before the flush: %d WRITEs", got)
			return
		}
		elapsed := d.Elapsed(func() {
			if terr := f.Truncate(blocks * bs); terr != nil {
				t.Error(terr)
			}
		})
		wantT := 2 * pipelineRTT // one coalesced WRITE + the SETATTR
		if elapsed < wantT || elapsed > wantT+pipelineRTT/2 {
			t.Errorf("coalesced flush took %v, want ~%v (2 round trips)", elapsed, wantT)
		}
		if got := m.WANCounts()["WRITE"]; got != 1 {
			t.Errorf("WAN WRITEs = %d, want 1 (coalesced)", got)
		}
		// Durability: the server's copy carries every coalesced byte.
		attr, err := d.FS.LookupPath("big")
		if err != nil || attr.Size != blocks*bs {
			t.Fatalf("server copy: size=%d err=%v", attr.Size, err)
		}
		got := make([]byte, blocks*bs)
		if _, _, err := d.FS.ReadAt(attr.ID, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("server copy differs from the coalesced write-back")
		}
	})
}

// TestCoalescedFlushSplitsAtHolesAndCap checks the run boundaries: a hole in
// the dirty set splits the coalesced WRITE, and MaxWriteBytes caps how much
// one WRITE may carry.
func TestCoalescedFlushSplitsAtHolesAndCap(t *testing.T) {
	const bs = 32 * 1024
	cases := []struct {
		name       string
		dirty      []int // block numbers written
		maxBytes   int
		wantWrites int64
	}{
		{"hole-splits-run", []int{0, 1, 3, 4}, 0, 2},
		{"cap-splits-run", []int{0, 1, 2, 3}, 2 * bs, 2},
		{"cap-at-blocksize-disables", []int{0, 1, 2, 3}, bs, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newPipelineDeployment(t)
			d.FS.WriteFile("f", make([]byte, 6*bs))
			d.Run("flush", func() {
				sess, err := d.NewSession("s", core.Config{
					Model: core.ModelPolling, WriteBack: true,
					FlushInterval: time.Hour, MaxWriteBytes: tc.maxBytes,
				})
				if err != nil {
					t.Error(err)
					return
				}
				m, err := sess.Mount("C1", kernelNoac())
				if err != nil {
					t.Error(err)
					return
				}
				f, err := m.Client.Open("f")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
					t.Error(err)
					return
				}
				block := bytes.Repeat([]byte{0xCD}, bs)
				for _, bn := range tc.dirty {
					if _, err := f.WriteAt(block, uint64(bn*bs)); err != nil {
						t.Error(err)
						return
					}
				}
				if err := f.Sync(); err != nil {
					t.Error(err)
					return
				}
				if terr := f.Truncate(6 * bs); terr != nil {
					t.Error(terr)
					return
				}
				if got := m.WANCounts()["WRITE"]; got != tc.wantWrites {
					t.Errorf("WAN WRITEs = %d, want %d", got, tc.wantWrites)
				}
			})
		})
	}
}

// TestCoalescedFlushNoSpuriousRetransmits runs the coalesced write-back over
// the real bandwidth-limited WAN profile: a megabyte WRITE spends ~2s in
// transfer at 4 Mbit/s, well past the 1s base retransmission timeout, so
// without the size-stretched timeout (Config.RetransmitPerByte) every large
// coalesced WRITE would be retransmitted while its first copy was still in
// flight — doubling exactly the WAN traffic coalescing exists to save.
func TestCoalescedFlushNoSpuriousRetransmits(t *testing.T) {
	const blocks = 64
	const bs = 32 * 1024
	d, err := NewDeployment(Config{WAN: simnet.WAN})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	d.FS.WriteFile("big", make([]byte, blocks*bs))
	d.Run("flush", func() {
		sess, err := d.NewSession("s", core.Config{
			Model: core.ModelPolling, WriteBack: true, FlushInterval: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		m, err := sess.Mount("C1", kernelNoac())
		if err != nil {
			t.Error(err)
			return
		}
		f, err := m.Client.Open("big")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
			t.Error(err)
			return
		}
		block := make([]byte, bs)
		for bn := 0; bn < blocks; bn++ {
			if _, err := f.WriteAt(block, uint64(bn*bs)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := f.Sync(); err != nil {
			t.Error(err)
			return
		}
		if terr := f.Truncate(blocks * bs); terr != nil { // forces the flush
			t.Error(terr)
			return
		}
		if got := m.WANCounts()["WRITE"]; got != 2 {
			t.Errorf("WAN WRITEs = %d, want 2 (64 blocks coalesced at MaxIOSize)", got)
		}
		if r := d.PublishMetrics().SumCounters("gvfs_rpc_retransmits_total"); r != 0 {
			t.Errorf("%d spurious retransmits flushing over the bandwidth-limited WAN, want 0", r)
		}
	})
}

// TestGetInvDrainsLargeBufferInOnePoll pins the GETINV batching default: a
// few hundred pending invalidations — more than the old 256-handle reply
// bound — now drain in a single GETINV round trip per poll period.
func TestGetInvDrainsLargeBufferInOnePoll(t *testing.T) {
	const files = 300
	// A short RTT keeps the 300 update writes well inside one poll period,
	// so every invalidation is pending when the single poll fires.
	d, err := NewDeployment(Config{WAN: simnet.Params{RTT: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	for i := 0; i < files; i++ {
		d.FS.WriteFile(fmt.Sprintf("pkg/f%03d", i), []byte("x"))
	}
	d.Run("test", func() {
		sess, err := d.NewSession("s", core.Config{Model: core.ModelPolling, PollPeriod: time.Minute})
		if err != nil {
			t.Error(err)
			return
		}
		reader, _ := sess.Mount("C1", kernelNoac())
		admin, _ := sess.Mount("C2", kernelNoac())
		for i := 0; i < files; i++ {
			reader.Client.Stat(fmt.Sprintf("pkg/f%03d", i))
		}
		invBefore := reader.Proxy.Stats().Invalidations
		for i := 0; i < files; i++ {
			admin.Client.WriteFile(fmt.Sprintf("pkg/f%03d", i), []byte("y"))
		}
		getinvBefore := reader.WANCounts()["GETINV"]
		d.Clock.Sleep(time.Minute + time.Second)
		polls := reader.WANCounts()["GETINV"] - getinvBefore
		if polls != 1 {
			t.Errorf("%d invalidations took %d GETINV calls, want 1 (old 256-handle reply bound would need 2)", files, polls)
		}
		if inv := reader.Proxy.Stats().Invalidations - invBefore; inv < files {
			t.Errorf("invalidations processed = %d, want >= %d", inv, files)
		}
	})
}
