package gvfs

import (
	"flag"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// seedFlag lets a failing randomized test be replayed deterministically:
//
//	go test ./gvfs/ -run TestChaos -gvfs.seed=12345
var seedFlag = flag.Int64("gvfs.seed", 0, "override the seed of randomized gvfs tests (0 = per-test default)")

// testSeed resolves the seed for a randomized test and guarantees it is
// printed when the test fails, so any failure is replayable.
func testSeed(t *testing.T, def int64) int64 {
	seed := def
	if *seedFlag != 0 {
		seed = *seedFlag
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay with: go test ./gvfs/ -run '%s' -gvfs.seed=%d", t.Name(), seed)
		}
	})
	return seed
}

func chaosFaults() simnet.Faults {
	return simnet.Faults{
		DropProb:    0.02,
		DupProb:     0.02,
		ReorderProb: 0.05,
		JitterMax:   5 * time.Millisecond,
	}
}

// TestChaosBothModels is the acceptance scenario: message drops,
// duplication, a partition/heal cycle, and a proxy-server crash/restart
// over concurrent clients, in both consistency models, with zero
// visibility-rule violations.
func TestChaosBothModels(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 7)
			rep, err := RunChaos(ChaosOptions{
				Model:  mode.model,
				Seed:   seed,
				Faults: chaosFaults(),
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			for p, trace := range rep.Traces {
				t.Logf("span trace for %s:\n%s", p, trace)
			}
			if rep.Restarts != 1 {
				t.Errorf("proxy-server restarts = %d, want 1", rep.Restarts)
			}
			wantEvents := 0
			for _, ev := range rep.Plan.Events {
				if ev.Kind != "restart-server" {
					wantEvents++
				}
			}
			if len(rep.NetEvents) != wantEvents {
				t.Errorf("applied %d partition/heal events, plan has %d: %+v",
					len(rep.NetEvents), wantEvents, rep.NetEvents)
			}
			st := rep.NetStats
			if st.FaultDrops == 0 || st.FaultDups == 0 || st.FaultReorders == 0 {
				t.Errorf("fault counters not all active: %+v", st)
			}
			if st.Dropped == 0 {
				t.Errorf("no partition drops despite a partition/heal cycle: %+v", st)
			}
			if rep.OpErrors == rep.Ops {
				t.Errorf("every one of %d ops errored — harness not exercising the stack", rep.Ops)
			}
			t.Logf("%s: %d ops (%d writes, %d reads, %d errors), net %+v, client %+v",
				mode.name, rep.Ops, rep.Writes, rep.Reads, rep.OpErrors, st, rep.ClientStats)
		})
	}
}

// lossyFaults is the acceptance fault policy for the at-least-once RPC
// machinery: every link drops well above the retransmission design point
// (>= 5% per message) and duplicates often enough to exercise the
// duplicate-request cache on every server.
func lossyFaults() simnet.Faults {
	return simnet.Faults{
		DropProb:    0.06,
		DupProb:     0.03,
		ReorderProb: 0.05,
		JitterMax:   5 * time.Millisecond,
	}
}

// TestChaosLossyLinksBothModels runs the full chaos schedule over links
// lossy enough that bare single-send RPC could not survive, and asserts the
// retransmission + duplicate-request-cache machinery both carried real load
// and preserved the visibility rules in both consistency models.
func TestChaosLossyLinksBothModels(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 23)
			rep, err := RunChaos(ChaosOptions{
				Model:  mode.model,
				Seed:   seed,
				Faults: lossyFaults(),
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			for p, trace := range rep.Traces {
				t.Logf("span trace for %s:\n%s", p, trace)
			}
			if rep.NetStats.FaultDrops == 0 {
				t.Errorf("no fault drops despite DropProb=%v: %+v", lossyFaults().DropProb, rep.NetStats)
			}
			if rep.Retransmits == 0 {
				t.Error("no same-XID retransmissions on a link dropping 6% of messages")
			}
			if rep.DRCHits == 0 {
				t.Error("no duplicate-request cache hits despite drops and duplication")
			}
			if rep.OpErrors == rep.Ops {
				t.Errorf("every one of %d ops errored — harness not exercising the stack", rep.Ops)
			}
			t.Logf("%s: %d ops (%d errors), %d retransmits, %d DRC hits, net %+v",
				mode.name, rep.Ops, rep.OpErrors, rep.Retransmits, rep.DRCHits, rep.NetStats)
		})
	}
}

// TestChaosMetadataBothModels drives the namespace-churn workload —
// exclusive creates, unlinks, renames, stat/access probes, readdir
// membership scans — over the lossy fault profile in both consistency
// models, and asserts the existence checker finds zero violations while
// the dentry and negative-lookup caches demonstrably carried load.
func TestChaosMetadataBothModels(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 31)
			rep, err := RunChaos(ChaosOptions{
				Model:    mode.model,
				Metadata: true,
				Seed:     seed,
				Faults:   lossyFaults(),
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			if rep.OpErrors == rep.Ops {
				t.Errorf("every one of %d ops errored — harness not exercising the stack", rep.Ops)
			}
			if rep.Reads == 0 {
				t.Error("no checkable existence probes recorded")
			}
			if rep.Writes == 0 {
				t.Error("no successful namespace mutations recorded")
			}
			cs := rep.ClientStats
			if cs.DentryHits == 0 || cs.NegLookupHits == 0 {
				t.Errorf("metadata caches idle under namespace churn: dentry=%d negative=%d",
					cs.DentryHits, cs.NegLookupHits)
			}
			t.Logf("%s: %d ops (%d mutations, %d probes, %d errors), client %+v",
				mode.name, rep.Ops, rep.Writes, rep.Reads, rep.OpErrors, cs)
		})
	}
}

// TestChaosOverloadBothModels runs the burst fan-in overload schedule over
// lossy links with the proxy server bounded (two workers, a global admission
// bucket an order of magnitude below the opening burst): the server must
// provably shed load, the at-least-once machinery must absorb the sheds, and
// the visibility rules must survive untouched in both models.
func TestChaosOverloadBothModels(t *testing.T) {
	for _, mode := range []struct {
		name  string
		model core.Model
	}{
		{"polling", core.ModelPolling},
		{"delegation", core.ModelDelegation},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seed := testSeed(t, 404)
			rep, err := RunChaos(ChaosOptions{
				Model:    mode.model,
				Overload: true,
				Seed:     seed,
				Faults:   lossyFaults(),
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			for p, trace := range rep.Traces {
				t.Logf("span trace for %s:\n%s", p, trace)
			}
			if rep.Sheds == 0 {
				t.Error("bounded server shed nothing under burst fan-in: overload mode inert")
			}
			if rep.Retransmits == 0 {
				t.Error("no same-XID retransmissions despite sheds and lossy links")
			}
			if rep.OpErrors == rep.Ops {
				t.Errorf("every one of %d ops errored — harness not exercising the stack", rep.Ops)
			}
			t.Logf("%s: %d ops (%d errors), %d sheds, %d retransmits, %d DRC hits",
				mode.name, rep.Ops, rep.OpErrors, rep.Sheds, rep.Retransmits, rep.DRCHits)
		})
	}
}

// TestChaosOverloadTraceDeterminism replays one overload seed twice with full
// trace capture: the scheduling layer (queue order, shed decisions, slot
// yields) must be as deterministic as everything beneath it — same shed
// count, same retransmission work, byte-identical span dumps.
func TestChaosOverloadTraceDeterminism(t *testing.T) {
	seed := testSeed(t, 505)
	opts := ChaosOptions{
		Model:    core.ModelPolling,
		Overload: true,
		Steps:    60,
		Seed:     seed,
		Faults:   lossyFaults(),
		TraceAll: true,
	}
	r1, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	for _, rep := range []*ChaosReport{r1, r2} {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if r1.Sheds == 0 {
		t.Error("no sheds in an overload run")
	}
	if r1.Sheds != r2.Sheds || r1.Retransmits != r2.Retransmits || r1.DRCHits != r2.DRCHits {
		t.Errorf("scheduling work differs across replays: %d/%d sheds, %d/%d retransmits, %d/%d DRC hits",
			r1.Sheds, r2.Sheds, r1.Retransmits, r2.Retransmits, r1.DRCHits, r2.DRCHits)
	}
	if len(r1.Traces) != len(r2.Traces) {
		t.Fatalf("trace sets differ: %d vs %d paths", len(r1.Traces), len(r2.Traces))
	}
	for p, tr1 := range r1.Traces {
		tr2, ok := r2.Traces[p]
		if !ok {
			t.Errorf("path %s traced in run 1 only", p)
			continue
		}
		if tr1 != tr2 {
			t.Errorf("trace for %s differs between identically seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", p, tr1, tr2)
		}
	}
}

// TestChaosLossyTraceDeterminism replays one lossy seed twice with full
// trace capture and asserts the runs are byte-identical: same disruption
// log, same retransmission work, same span dump for every path. The
// retransmission jitter is a hash of (seed, XID, attempt) rather than a
// shared PRNG draw precisely so this holds regardless of actor scheduling.
func TestChaosLossyTraceDeterminism(t *testing.T) {
	seed := testSeed(t, 29)
	opts := ChaosOptions{
		Model:    core.ModelPolling,
		Steps:    60,
		Seed:     seed,
		Faults:   lossyFaults(),
		TraceAll: true,
	}
	r1, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	for _, rep := range []*ChaosReport{r1, r2} {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if r1.Retransmits == 0 {
		t.Error("no retransmissions in a lossy run")
	}
	if r1.Retransmits != r2.Retransmits || r1.DRCHits != r2.DRCHits {
		t.Errorf("RPC recovery work differs across replays: %d/%d retransmits, %d/%d DRC hits",
			r1.Retransmits, r2.Retransmits, r1.DRCHits, r2.DRCHits)
	}
	if len(r1.NetEvents) != len(r2.NetEvents) {
		t.Fatalf("event logs differ in length: %d vs %d", len(r1.NetEvents), len(r2.NetEvents))
	}
	for i := range r1.NetEvents {
		if r1.NetEvents[i] != r2.NetEvents[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, r1.NetEvents[i], r2.NetEvents[i])
		}
	}
	if len(r1.Traces) != len(r2.Traces) {
		t.Fatalf("trace sets differ: %d vs %d paths", len(r1.Traces), len(r2.Traces))
	}
	for p, tr1 := range r1.Traces {
		tr2, ok := r2.Traces[p]
		if !ok {
			t.Errorf("path %s traced in run 1 only", p)
			continue
		}
		if tr1 != tr2 {
			t.Errorf("trace for %s differs between identically seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", p, tr1, tr2)
		}
	}
}

// TestChaosSeedReproducible re-runs the same seeded plan and asserts the
// disruption schedule replays identically (same partition/heal events at
// the same virtual times) and that fault injection was active both times.
func TestChaosSeedReproducible(t *testing.T) {
	seed := testSeed(t, 11)
	opts := ChaosOptions{
		Model:  core.ModelPolling,
		Steps:  60,
		Seed:   seed,
		Faults: chaosFaults(),
	}
	r1, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	for _, rep := range []*ChaosReport{r1, r2} {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		for p, trace := range rep.Traces {
			t.Logf("span trace for %s:\n%s", p, trace)
		}
	}
	if len(r1.NetEvents) != len(r2.NetEvents) {
		t.Fatalf("event logs differ in length: %d vs %d", len(r1.NetEvents), len(r2.NetEvents))
	}
	for i := range r1.NetEvents {
		if r1.NetEvents[i] != r2.NetEvents[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, r1.NetEvents[i], r2.NetEvents[i])
		}
	}
	if s := r1.NetStats; s.FaultDrops == 0 || s.FaultDups == 0 {
		t.Errorf("run 1 fault counters inactive: %+v", s)
	}
	if s := r2.NetStats; s.FaultDrops == 0 || s.FaultDups == 0 {
		t.Errorf("run 2 fault counters inactive: %+v", s)
	}
}
