package gvfs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nfsclient"
	"repro/internal/obs"
	"repro/internal/obs/attr"
)

// observatoryWorkload runs the canonical cross-client conflict: C1 warms its
// cache over the working set, C2 commits new versions, C1 keeps re-reading.
// It returns the deployment with all spans and oracle state intact.
func observatoryWorkload(t *testing.T, model core.Model) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{TraceRing: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	for _, p := range []string{"w/a", "w/b"} {
		if _, err := d.FS.WriteFile(p, bytes.Repeat([]byte("v0"), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.Config{Model: model}
	if model == core.ModelPolling {
		cfg.PollPeriod = 30 * time.Second
	}
	d.Run("observatory", func() {
		sess, err := d.NewSession("obs", cfg)
		if err != nil {
			t.Error(err)
			return
		}
		reader, err := sess.Mount("C1", nfsclient.Options{NoAC: true})
		if err != nil {
			t.Error(err)
			return
		}
		writer, err := sess.Mount("C2", nfsclient.Options{NoAC: true})
		if err != nil {
			t.Error(err)
			return
		}
		scan := func() {
			for _, p := range []string{"w/a", "w/b"} {
				if _, err := reader.Client.Stat(p); err != nil {
					t.Errorf("stat %s: %v", p, err)
				}
				if _, err := reader.Client.ReadFile(p); err != nil {
					t.Errorf("read %s: %v", p, err)
				}
			}
		}
		scan() // warm C1's proxy cache
		for r := 0; r < 4; r++ {
			if err := writer.Client.WriteFile("w/a", bytes.Repeat([]byte{byte('1' + r)}, 8192)); err != nil {
				t.Errorf("write round %d: %v", r, err)
			}
			scan() // under polling these serves are stale-but-in-bound
			d.Clock.Sleep(5 * time.Second)
		}
		d.Clock.Sleep(31 * time.Second) // let the last poll drain
		scan()
	})
	return d
}

// TestStalenessObservatoryBothModels: the oracle must measure real staleness
// under polling (stale-but-in-bound serves between polls), keep delegation
// essentially fresh, see its invalidation channel carry load — and count
// zero violations of either model's advertised bound.
func TestStalenessObservatoryBothModels(t *testing.T) {
	for _, mode := range []struct {
		name    string
		model   core.Model
		short   string
		channel string
	}{
		{"polling", core.ModelPolling, "poll", "poll"},
		{"delegation", core.ModelDelegation, "deleg", "recall"},
	} {
		t.Run(mode.name, func(t *testing.T) {
			d := observatoryWorkload(t, mode.model)
			if t.Failed() {
				return
			}
			snap := d.PublishMetrics()
			if v := snap.Counters[obs.Label("gvfs_staleness_violations_total", "model", mode.short)]; v != 0 {
				t.Errorf("%d staleness violations — %s broke its advertised bound", v, mode.name)
			}
			age := snap.Histograms[obs.Label("gvfs_staleness_age", "model", mode.short)]
			if age.Count == 0 {
				t.Fatal("no cache serves scored by the oracle — observatory not wired")
			}
			if mode.model == core.ModelPolling {
				if age.Sum == 0 {
					t.Error("polling measured zero total staleness despite cross-client writes between polls")
				}
				// Permitted staleness is bounded by the poll period plus one
				// poll round trip; well under a minute here.
				if max := time.Duration(age.Bounds[len(age.Bounds)-1]); age.Counts[len(age.Counts)-1] != 0 {
					t.Errorf("measured staleness beyond the largest bucket (%v)", max)
				}
			} else if age.Sum != 0 {
				t.Errorf("delegation served stale data (total age %v) despite synchronous recalls",
					time.Duration(age.Sum))
			}
			prop := snap.Histograms[obs.Label("gvfs_inv_propagation", "channel", mode.channel)]
			if prop.Count == 0 {
				t.Errorf("invalidation channel %q recorded no propagations", mode.channel)
			}
		})
	}
}

// TestAttributionExactPartition: every attributed request's segments must
// sum exactly to its measured end-to-end latency, and PublishMetrics must
// export the per-op, per-segment histograms.
func TestAttributionExactPartition(t *testing.T) {
	d := observatoryWorkload(t, core.ModelPolling)
	if t.Failed() {
		return
	}
	bds := d.Attribution()
	if len(bds) == 0 {
		t.Fatal("no requests attributed")
	}
	for _, bd := range bds {
		var sum time.Duration
		for seg, dur := range bd.Seg {
			if dur < 0 {
				t.Errorf("req %d: negative %s segment", bd.Req, seg)
			}
			sum += dur
		}
		if sum != bd.Total() {
			t.Errorf("req %d (%s): segments sum to %v, end-to-end is %v", bd.Req, bd.Op, sum, bd.Total())
		}
	}
	snap := d.PublishMetrics()
	total := snap.Histograms[obs.Label(obs.Label("gvfs_attr_seconds", "op", "READ"), "segment", "total")]
	if total.Count == 0 {
		t.Error("gvfs_attr_seconds READ/total histogram empty after PublishMetrics")
	}
	// Publishing again must not double-count.
	again := d.PublishMetrics().Histograms[obs.Label(obs.Label("gvfs_attr_seconds", "op", "READ"), "segment", "total")]
	if again.Count != total.Count {
		t.Errorf("repeated publish double-counted attribution: %d then %d", total.Count, again.Count)
	}
}

// TestAttributionRecallSegment: under delegation, a conflicting write blocks
// behind the recall callback, and attribution must name that time SegRecall
// on the writer's request.
func TestAttributionRecallSegment(t *testing.T) {
	d := observatoryWorkload(t, core.ModelDelegation)
	if t.Failed() {
		return
	}
	var recalled time.Duration
	for _, bd := range d.Attribution() {
		recalled += bd.Seg[attr.SegRecall]
	}
	if recalled == 0 {
		t.Error("no recall blocking attributed despite cross-client write conflicts under delegation")
	}
}

// TestChaosAttributionDeterminism: under seeded lossy-WAN overload —
// retransmitted calls, shed-then-retried requests — the attribution report
// and staleness accounting must be byte-identical across same-seed runs, and
// the models must still never violate their bounds.
func TestChaosAttributionDeterminism(t *testing.T) {
	opts := ChaosOptions{
		Model:    core.ModelPolling,
		Overload: true,
		Steps:    60,
		Seed:     testSeed(t, 613),
		Faults:   lossyFaults(),
		TraceAll: true,
	}
	r1, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Attribution != r2.Attribution {
		t.Errorf("attribution differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			r1.Attribution, r2.Attribution)
	}
	if r1.StalenessViolations != r2.StalenessViolations {
		t.Errorf("staleness violations differ: %d vs %d", r1.StalenessViolations, r2.StalenessViolations)
	}
	if r1.StalenessViolations != 0 {
		t.Errorf("%d staleness violations under chaos", r1.StalenessViolations)
	}
	if !strings.Contains(r1.Attribution, "CRITICAL-PATH ATTRIBUTION") {
		t.Fatalf("chaos report carries no attribution:\n%s", r1.Attribution)
	}
	// The lossy overloaded run must actually exercise the edge cases the
	// attribution decomposes: retransmits and shed backoff.
	if r1.Retransmits == 0 && r1.Sheds == 0 {
		t.Error("chaos run produced neither retransmits nor sheds; attribution edge cases not exercised")
	}
	// The itemized slowest-request lines print only nonzero segments, so
	// "retransmit=" / "shed_backoff=" there proves the stalls were attributed.
	if r1.Retransmits > 0 && !strings.Contains(r1.Attribution, attr.SegRetransmit+"=") {
		t.Errorf("%d retransmits but no %s segment in report:\n%s",
			r1.Retransmits, attr.SegRetransmit, r1.Attribution)
	}
	// Whether a shed request ranks among the report's slowest is
	// seed-dependent, so assert shed attribution through the harvested
	// per-segment histograms instead of the itemized lines.
	if r1.Sheds > 0 {
		var shed int64
		for name, h := range r1.Metrics.Histograms {
			if strings.HasPrefix(name, "gvfs_attr_seconds") &&
				strings.Contains(name, `segment="`+attr.SegShed+`"`) {
				shed += h.Sum
			}
		}
		if shed == 0 {
			t.Errorf("%d sheds but zero %s time attributed", r1.Sheds, attr.SegShed)
		}
	}
}

// TestAttributionWritebackCoalesced: write-back caching coalesces several
// dirty runs into fewer upstream WRITEs whose flush spans ride background
// request IDs. Attribution must stay an exact partition for the kernel
// requests, and local-root analysis must handle the flush groups too —
// byte-identically across two identical virtual-time runs.
func TestAttributionWritebackCoalesced(t *testing.T) {
	run := func() (string, string) {
		d, err := NewDeployment(Config{TraceRing: 1 << 15})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := d.FS.WriteFile("w/data", make([]byte, 256<<10)); err != nil {
			t.Fatal(err)
		}
		d.Run("coalesce", func() {
			sess, err := d.NewSession("wb", core.Config{
				Model: core.ModelPolling, PollPeriod: 30 * time.Second, WriteBack: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			m, err := sess.Mount("C1", nfsclient.Options{NoAC: true})
			if err != nil {
				t.Error(err)
				return
			}
			f, err := m.Client.Open("w/data")
			if err != nil {
				t.Error(err)
				return
			}
			// Two separated dirty runs, twice, then sync: the write-back
			// flusher coalesces each run's blocks into single upstream WRITEs.
			chunk := bytes.Repeat([]byte("x"), 64<<10)
			for pass := 0; pass < 2; pass++ {
				for _, off := range []uint64{0, 128 << 10} {
					if _, err := f.WriteAt(chunk, off); err != nil {
						t.Errorf("write at %d: %v", off, err)
					}
				}
				if err := f.Sync(); err != nil {
					t.Errorf("sync: %v", err)
				}
			}
			if err := f.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
		spans := d.Obs.Spans()
		kernel := attr.Analyze(spans)
		if len(kernel) == 0 {
			t.Fatal("no kernel requests attributed")
		}
		local := attr.AnalyzeLocal(spans)
		if len(local) < len(kernel) {
			t.Fatalf("local-root analysis found %d groups, fewer than %d kernel roots", len(local), len(kernel))
		}
		for _, bd := range append(kernel, local...) {
			var sum time.Duration
			for _, dur := range bd.Seg {
				sum += dur
			}
			if sum != bd.Total() {
				t.Errorf("req %d (%s at %s): segments sum to %v, end-to-end is %v",
					bd.Req, bd.Op, bd.Node, sum, bd.Total())
			}
		}
		return attr.FormatReport(kernel, 5), attr.FormatReport(local, 5)
	}
	k1, l1 := run()
	if t.Failed() {
		return
	}
	k2, l2 := run()
	if k1 != k2 {
		t.Errorf("kernel attribution differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", k1, k2)
	}
	if l1 != l2 {
		t.Errorf("local attribution differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", l1, l2)
	}
	if !strings.Contains(k1, "WRITE") {
		t.Errorf("no WRITE requests in attribution report:\n%s", k1)
	}
}
