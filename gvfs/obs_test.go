package gvfs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nfsclient"
	"repro/internal/obs"
)

// TestTraceFullReadPipeline walks one request ID across the whole pipeline:
// a kernel READ mints an ID, the proxy client serves it (cold forward), the
// proxy server and NFS server see the same ID, and readahead children link
// back to it via Parent. A later sequential READ must join an in-flight
// prefetch instead of forwarding again.
func TestTraceFullReadPipeline(t *testing.T) {
	d, err := NewDeployment(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const blocks = 5
	payload := bytes.Repeat([]byte("q"), blocks*32*1024)
	d.Run("trace", func() {
		sess, err := d.NewSession("tr", core.Config{Model: core.ModelPolling, ReadAhead: 2})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := d.FS.WriteFile("trace/data", payload); err != nil {
			t.Error(err)
			return
		}
		m, err := sess.Mount("C1", nfsclient.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		data, err := m.Client.ReadFile("trace/data")
		if err != nil {
			t.Error(err)
		} else if !bytes.Equal(data, payload) {
			t.Errorf("read %d bytes, want %d", len(data), len(payload))
		}
	})
	if t.Failed() {
		return
	}

	fh, err := d.FHForPath("trace/data")
	if err != nil {
		t.Fatal(err)
	}
	key := fh.String()
	spans := d.Obs.Spans()

	// Kernel READ calls, oldest first (Spans is canonically sorted).
	var kernReads []obs.Span
	for _, s := range spans {
		if s.Node == "kern:C1" && s.Op == "call READ" {
			kernReads = append(kernReads, s)
		}
	}
	if len(kernReads) < blocks {
		t.Fatalf("kernel issued %d READs, want >= %d\n%s", len(kernReads), blocks, obs.FormatSpans(spans))
	}
	first := kernReads[0]
	if first.Req == 0 {
		t.Fatalf("kernel READ minted no request ID: %+v", first)
	}

	// The same request ID must appear at every hop of the cold read.
	find := func(node, op string) *obs.Span {
		for i := range spans {
			s := &spans[i]
			if s.Node == node && s.Op == op && s.Req == first.Req {
				return s
			}
		}
		return nil
	}
	pc := find("proxyc:C1/tr", "READ")
	if pc == nil {
		t.Fatalf("no proxy-client READ span for req %s\n%s", obs.FormatReq(first.Req), obs.FormatSpans(spans))
	}
	if pc.Detail != "forward" {
		t.Errorf("cold READ detail = %q, want %q", pc.Detail, "forward")
	}
	if pc.FH != key {
		t.Errorf("proxy-client READ span FH = %q, want %q", pc.FH, key)
	}
	if pc.Bytes != 32*1024 {
		t.Errorf("proxy-client READ span bytes = %d, want %d", pc.Bytes, 32*1024)
	}
	if pc.Start < first.Start || pc.End > first.End {
		t.Errorf("proxy serve span [%v,%v] not nested in kernel call span [%v,%v]",
			pc.Start, pc.End, first.Start, first.End)
	}
	for _, hop := range []struct{ node, op string }{
		{"proxyc:C1/tr", "call READ"}, // proxy client -> proxy server
		{"proxyd:tr", "serve READ"},   // proxy server serve side
		{"proxyd:tr", "call READ"},    // proxy server -> NFS server
		{"nfsd", "serve READ"},        // kernel NFS server
	} {
		if find(hop.node, hop.op) == nil {
			t.Errorf("request %s left no %q span at %s", obs.FormatReq(first.Req), hop.op, hop.node)
		}
	}

	// Readahead children carry the triggering request as Parent; the next
	// sequential kernel READ joins the in-flight prefetch.
	var readaheads, joins int
	for _, s := range spans {
		if s.Op == "READAHEAD" && s.FH == key {
			readaheads++
			if s.Parent == 0 {
				t.Errorf("READAHEAD span has no parent: %+v", s)
			}
		}
		if s.Node == "proxyc:C1/tr" && s.Op == "READ" && s.Detail == "join" {
			joins++
		}
	}
	if readaheads < 2 {
		t.Errorf("READAHEAD spans = %d, want >= 2\n%s", readaheads, obs.FormatSpans(spans))
	}
	if joins == 0 {
		t.Errorf("no sequential READ joined an in-flight prefetch\n%s", obs.FormatSpans(spans))
	}

	// TraceForFH must pull in the kernel-side spans by request-ID expansion
	// even though the kernel never stamps file handles.
	trace := d.TraceForFH(fh, 0)
	var kernInTrace bool
	for _, s := range trace {
		if s.Node == "kern:C1" {
			kernInTrace = true
		}
	}
	if !kernInTrace {
		t.Errorf("TraceForFH missed the kernel spans:\n%s", obs.FormatSpans(trace))
	}

	// The unified registry saw the same story, and its Prometheus dump
	// round-trips through the validator.
	snap := d.PublishMetrics()
	if v := snap.Counters[`gvfs_client_forwards_total{node="C1/tr"}`]; v == 0 {
		t.Errorf("forwards counter not incremented: %v", snap.Counters)
	}
	if v := snap.Counters[`gvfs_client_readaheads_total{node="C1/tr"}`]; v != int64(readaheads) {
		t.Errorf("readaheads counter = %d, want %d (the READAHEAD span count)", v, readaheads)
	}
	if v := snap.Counters[`gvfs_client_readahead_joins_total{node="C1/tr"}`]; v == 0 {
		t.Errorf("readahead joins counter not incremented")
	}
	var buf bytes.Buffer
	if err := d.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("metrics dump does not parse: %v", err)
	}
	if n == 0 {
		t.Fatal("metrics dump is empty")
	}
}

// TestWarmRevalidationHitsLocally mounts noac — every kernel access
// revalidates attributes — and asserts the proxy serves repeated
// revalidations from its session cache, traced as hits.
func TestWarmRevalidationHitsLocally(t *testing.T) {
	d, err := NewDeployment(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Run("warm", func() {
		sess, err := d.NewSession("w", core.Config{Model: core.ModelPolling})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := d.FS.WriteFile("warm/data", bytes.Repeat([]byte("h"), 4096)); err != nil {
			t.Error(err)
			return
		}
		m, err := sess.Mount("C1", nfsclient.Options{NoAC: true})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			if _, err := m.Client.ReadFile("warm/data"); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if t.Failed() {
		return
	}
	fh, err := d.FHForPath("warm/data")
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, s := range d.TraceForFH(fh, 0) {
		if s.Node == "proxyc:C1/w" && s.Op == "GETATTR" && s.Detail == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("no warm GETATTR traced as a cache hit:\n%s", obs.FormatSpans(d.TraceForFH(fh, 0)))
	}
	if v := d.PublishMetrics().Counters[`gvfs_client_local_hits_total{node="C1/w"}`]; v == 0 {
		t.Errorf("local hits counter not incremented")
	}
}

// TestChaosTraceDeterminism runs the same seeded chaos schedule twice and
// requires byte-identical formatted span dumps for every contended path:
// the acceptance bar that makes a seeded violation replayable offline.
func TestChaosTraceDeterminism(t *testing.T) {
	seed := testSeed(t, 23)
	opts := ChaosOptions{
		Model:            core.ModelPolling,
		Steps:            40,
		Seed:             seed,
		Faults:           chaosFaults(),
		FlushParallelism: 1,
		TraceAll:         true,
	}
	r1, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunChaos(opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	for _, rep := range []*ChaosReport{r1, r2} {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if len(r1.Traces) == 0 {
		t.Fatal("TraceAll produced no traces")
	}
	if len(r1.Traces) != len(r2.Traces) {
		t.Fatalf("trace sets differ: %d vs %d paths", len(r1.Traces), len(r2.Traces))
	}
	for p, tr1 := range r1.Traces {
		tr2, ok := r2.Traces[p]
		if !ok {
			t.Errorf("run 2 has no trace for %s", p)
			continue
		}
		if tr1 != tr2 {
			t.Errorf("trace for %s differs between runs of seed %d:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				p, seed, tr1, tr2)
		}
	}
}

// TestSnapshotRaceUnderTraffic hammers Snapshot, Spans, and the Prometheus
// writer from unmanaged OS goroutines while clients generate contended
// traffic — meaningful under -race, and a liveness check otherwise.
func TestSnapshotRaceUnderTraffic(t *testing.T) {
	d, err := NewDeployment(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				d.Obs.Registry().Snapshot()
				d.Obs.Spans()
				d.PublishMetrics()
				_ = d.WriteMetrics(io.Discard)
			}
		}()
	}

	d.Run("race-traffic", func() {
		sess, err := d.NewSession("race", core.Config{
			Model:      core.ModelPolling,
			WriteBack:  true,
			PollPeriod: 2 * time.Second,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := d.FS.WriteFile("race/shared", bytes.Repeat([]byte("r"), 4096)); err != nil {
			t.Error(err)
			return
		}
		m1, err := sess.Mount("C1", nfsclient.Options{NoAC: true})
		if err != nil {
			t.Error(err)
			return
		}
		m2, err := sess.Mount("C2", nfsclient.Options{NoAC: true})
		if err != nil {
			t.Error(err)
			return
		}
		g := d.NewGroup()
		g.Go("writer", func() {
			for i := 0; i < 30; i++ {
				if err := m1.Client.WriteFile("race/shared", bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
				d.Clock.Sleep(300 * time.Millisecond)
			}
		})
		g.Go("reader", func() {
			for i := 0; i < 30; i++ {
				if _, err := m2.Client.ReadFile("race/shared"); err != nil {
					t.Errorf("read %d: %v", i, err)
					return
				}
				d.Clock.Sleep(300 * time.Millisecond)
			}
		})
		g.Wait()
	})
	close(done)
	wg.Wait()

	snap := d.PublishMetrics()
	if len(snap.Counters) == 0 {
		t.Error("registry empty after traffic")
	}
}
